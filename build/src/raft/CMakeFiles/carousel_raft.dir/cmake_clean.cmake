file(REMOVE_RECURSE
  "CMakeFiles/carousel_raft.dir/raft_node.cc.o"
  "CMakeFiles/carousel_raft.dir/raft_node.cc.o.d"
  "libcarousel_raft.a"
  "libcarousel_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
