# Empty compiler generated dependencies file for carousel_tapir.
# This may be replaced when dependencies are built.
