file(REMOVE_RECURSE
  "CMakeFiles/carousel_tapir.dir/client.cc.o"
  "CMakeFiles/carousel_tapir.dir/client.cc.o.d"
  "CMakeFiles/carousel_tapir.dir/cluster.cc.o"
  "CMakeFiles/carousel_tapir.dir/cluster.cc.o.d"
  "CMakeFiles/carousel_tapir.dir/server.cc.o"
  "CMakeFiles/carousel_tapir.dir/server.cc.o.d"
  "libcarousel_tapir.a"
  "libcarousel_tapir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_tapir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
