file(REMOVE_RECURSE
  "libcarousel_tapir.a"
)
