# Empty dependencies file for carousel_sim.
# This may be replaced when dependencies are built.
