# Empty compiler generated dependencies file for carousel_kv.
# This may be replaced when dependencies are built.
