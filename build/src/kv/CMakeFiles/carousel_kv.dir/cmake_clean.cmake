file(REMOVE_RECURSE
  "CMakeFiles/carousel_kv.dir/pending_list.cc.o"
  "CMakeFiles/carousel_kv.dir/pending_list.cc.o.d"
  "libcarousel_kv.a"
  "libcarousel_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
