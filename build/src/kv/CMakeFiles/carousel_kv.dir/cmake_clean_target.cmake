file(REMOVE_RECURSE
  "libcarousel_kv.a"
)
