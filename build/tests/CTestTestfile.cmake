# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/carousel_basic_test[1]_include.cmake")
include("/root/repo/build/tests/carousel_cpc_test[1]_include.cmake")
include("/root/repo/build/tests/carousel_failure_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/tapir_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/carousel_property_test[1]_include.cmake")
include("/root/repo/build/tests/recon_test[1]_include.cmake")
include("/root/repo/build/tests/lossy_network_test[1]_include.cmake")
