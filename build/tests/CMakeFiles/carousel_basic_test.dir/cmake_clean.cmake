file(REMOVE_RECURSE
  "CMakeFiles/carousel_basic_test.dir/carousel_basic_test.cc.o"
  "CMakeFiles/carousel_basic_test.dir/carousel_basic_test.cc.o.d"
  "carousel_basic_test"
  "carousel_basic_test.pdb"
  "carousel_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
