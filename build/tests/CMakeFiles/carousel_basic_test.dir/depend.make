# Empty dependencies file for carousel_basic_test.
# This may be replaced when dependencies are built.
