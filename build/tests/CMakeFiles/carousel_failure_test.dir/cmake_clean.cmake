file(REMOVE_RECURSE
  "CMakeFiles/carousel_failure_test.dir/carousel_failure_test.cc.o"
  "CMakeFiles/carousel_failure_test.dir/carousel_failure_test.cc.o.d"
  "carousel_failure_test"
  "carousel_failure_test.pdb"
  "carousel_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
