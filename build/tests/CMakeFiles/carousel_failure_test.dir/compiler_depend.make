# Empty compiler generated dependencies file for carousel_failure_test.
# This may be replaced when dependencies are built.
