file(REMOVE_RECURSE
  "CMakeFiles/lossy_network_test.dir/lossy_network_test.cc.o"
  "CMakeFiles/lossy_network_test.dir/lossy_network_test.cc.o.d"
  "lossy_network_test"
  "lossy_network_test.pdb"
  "lossy_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
