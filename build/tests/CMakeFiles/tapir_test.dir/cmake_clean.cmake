file(REMOVE_RECURSE
  "CMakeFiles/tapir_test.dir/tapir_test.cc.o"
  "CMakeFiles/tapir_test.dir/tapir_test.cc.o.d"
  "tapir_test"
  "tapir_test.pdb"
  "tapir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
