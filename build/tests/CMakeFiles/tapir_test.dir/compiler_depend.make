# Empty compiler generated dependencies file for tapir_test.
# This may be replaced when dependencies are built.
