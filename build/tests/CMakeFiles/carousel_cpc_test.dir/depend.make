# Empty dependencies file for carousel_cpc_test.
# This may be replaced when dependencies are built.
