file(REMOVE_RECURSE
  "CMakeFiles/carousel_cpc_test.dir/carousel_cpc_test.cc.o"
  "CMakeFiles/carousel_cpc_test.dir/carousel_cpc_test.cc.o.d"
  "carousel_cpc_test"
  "carousel_cpc_test.pdb"
  "carousel_cpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_cpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
