# Empty compiler generated dependencies file for carousel_property_test.
# This may be replaced when dependencies are built.
