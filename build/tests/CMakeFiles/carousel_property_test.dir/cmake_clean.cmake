file(REMOVE_RECURSE
  "CMakeFiles/carousel_property_test.dir/carousel_property_test.cc.o"
  "CMakeFiles/carousel_property_test.dir/carousel_property_test.cc.o.d"
  "carousel_property_test"
  "carousel_property_test.pdb"
  "carousel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
