# Empty compiler generated dependencies file for carousel_sim_cli.
# This may be replaced when dependencies are built.
