file(REMOVE_RECURSE
  "CMakeFiles/carousel_sim_cli.dir/carousel_sim.cc.o"
  "CMakeFiles/carousel_sim_cli.dir/carousel_sim.cc.o.d"
  "carousel_sim"
  "carousel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
