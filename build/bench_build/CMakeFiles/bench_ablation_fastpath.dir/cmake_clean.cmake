file(REMOVE_RECURSE
  "../bench/bench_ablation_fastpath"
  "../bench/bench_ablation_fastpath.pdb"
  "CMakeFiles/bench_ablation_fastpath.dir/bench_ablation_fastpath.cc.o"
  "CMakeFiles/bench_ablation_fastpath.dir/bench_ablation_fastpath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
