file(REMOVE_RECURSE
  "../bench/bench_table2_retwis_profile"
  "../bench/bench_table2_retwis_profile.pdb"
  "CMakeFiles/bench_table2_retwis_profile.dir/bench_table2_retwis_profile.cc.o"
  "CMakeFiles/bench_table2_retwis_profile.dir/bench_table2_retwis_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_retwis_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
