file(REMOVE_RECURSE
  "../bench/bench_ablation_phase_breakdown"
  "../bench/bench_ablation_phase_breakdown.pdb"
  "CMakeFiles/bench_ablation_phase_breakdown.dir/bench_ablation_phase_breakdown.cc.o"
  "CMakeFiles/bench_ablation_phase_breakdown.dir/bench_ablation_phase_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
