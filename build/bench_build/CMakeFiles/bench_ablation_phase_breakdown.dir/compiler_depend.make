# Empty compiler generated dependencies file for bench_ablation_phase_breakdown.
# This may be replaced when dependencies are built.
