# Empty dependencies file for bench_fig8_ycsbt_latency_cdf.
# This may be replaced when dependencies are built.
