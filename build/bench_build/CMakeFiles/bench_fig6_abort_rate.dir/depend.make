# Empty dependencies file for bench_fig6_abort_rate.
# This may be replaced when dependencies are built.
