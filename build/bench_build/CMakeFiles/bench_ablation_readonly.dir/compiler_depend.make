# Empty compiler generated dependencies file for bench_ablation_readonly.
# This may be replaced when dependencies are built.
