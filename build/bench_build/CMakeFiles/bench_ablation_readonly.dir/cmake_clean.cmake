file(REMOVE_RECURSE
  "../bench/bench_ablation_readonly"
  "../bench/bench_ablation_readonly.pdb"
  "CMakeFiles/bench_ablation_readonly.dir/bench_ablation_readonly.cc.o"
  "CMakeFiles/bench_ablation_readonly.dir/bench_ablation_readonly.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
