// Figure 4: latency CDF for the Retwis workload on the EC2 topology.
//
// Paper setup (§6.3): 5 regions (Table 1 latencies), 5 partitions x 3
// replicas, 20 clients per DC, 200 tps target, Zipf(0.75) over 10 M keys.
// Paper result: Carousel Fast < Carousel Basic < TAPIR across the whole
// distribution; medians 232 / 290 / 334 ms, gap widening at the tail.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;

  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  if (FastMode()) {
    dopts.duration = 30 * kMicrosPerSecond;
    dopts.warmup = 5 * kMicrosPerSecond;
    dopts.cooldown = 5 * kMicrosPerSecond;
  } else {
    // Paper: 90 s runs, first and last 30 s excluded; we keep the same
    // 1/3 proportions at 60 s (the latency distribution is stationary).
    dopts.duration = 60 * kMicrosPerSecond;
    dopts.warmup = 20 * kMicrosPerSecond;
    dopts.cooldown = 20 * kMicrosPerSecond;
  }

  std::printf("== Figure 4: Retwis latency CDF, EC2 topology, 200 tps ==\n");
  std::printf("paper medians: TAPIR 334 ms, Carousel Basic 290 ms, "
              "Carousel Fast 232 ms\n\n");

  struct Line {
    SystemKind kind;
    Histogram latency;
    double abort_rate = 0;
  };
  Line lines[] = {{SystemKind::kTapir, {}, 0},
                  {SystemKind::kCarouselBasic, {}, 0},
                  {SystemKind::kCarouselFast, {}, 0}};

  for (Line& line : lines) {
    for (int rep = 0; rep < Repeats(); ++rep) {
      auto generator = workload::MakeRetwisGenerator(wopts);
      BenchRun run = RunSystem(line.kind, Ec2Topology(20), generator.get(),
                               dopts, core::ServerCostModel{},
                               /*seed=*/1000 + rep);
      line.latency.Merge(run.result.latency);
      line.abort_rate += run.result.AbortRate() / Repeats();
    }
  }

  std::printf("%-16s %9s %9s %9s %9s %9s  %s\n", "system", "p50(ms)",
              "p75(ms)", "p90(ms)", "p95(ms)", "p99(ms)", "abort%");
  for (const Line& line : lines) {
    std::printf("%-16s %9.0f %9.0f %9.0f %9.0f %9.0f  %5.2f%%\n",
                SystemName(line.kind), line.latency.Quantile(0.5) / 1000.0,
                line.latency.Quantile(0.75) / 1000.0,
                line.latency.Quantile(0.9) / 1000.0,
                line.latency.Quantile(0.95) / 1000.0,
                line.latency.Quantile(0.99) / 1000.0,
                100 * line.abort_rate);
  }
  std::printf("\n");
  for (const Line& line : lines) {
    PrintCdf(SystemName(line.kind), line.latency);
  }

  const double tapir = lines[0].latency.Quantile(0.5);
  const double basic = lines[1].latency.Quantile(0.5);
  const double fast = lines[2].latency.Quantile(0.5);
  std::printf("\nshape check: fast < basic <= tapir medians: %s "
              "(%.0f / %.0f / %.0f ms); paper gap TAPIR/Fast = 1.44x, "
              "measured %.2fx\n",
              fast < basic && basic <= tapir ? "YES" : "NO", fast / 1000,
              basic / 1000, tapir / 1000, tapir / fast);
  return 0;
}
