#ifndef CAROUSEL_BENCH_SWEEP_H_
#define CAROUSEL_BENCH_SWEEP_H_

#include <vector>

#include "bench/harness.h"

namespace carousel::bench {

/// One point of the local-cluster throughput sweep (Figures 5 and 6).
struct SweepPoint {
  double target_tps = 0;
  double committed_tps = 0;
  double abort_rate = 0;
  double dropped_tps = 0;
  int64_t p50_us = 0;
  /// WANRT ledger over the measurement window (Carousel systems only).
  obs::WanrtStats wanrt;
  bool has_wanrt = false;
};

/// The target-throughput axis of Figures 5 and 6. The fast-mode top
/// target (6000) sits past the unbatched Carousel knee (~4.3 k) but
/// before the batched one (~7 k), so the smoke run still demonstrates the
/// batching win at a CPU-bound point.
inline std::vector<double> SweepTargets() {
  if (FastMode()) return {1000, 4000, 6000};
  return {500, 1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000};
}

/// Runs the paper's local-cluster experiment (§6.4) for one system across
/// the target-throughput sweep: 5 DCs at 5 ms RTT, Retwis over 10 M keys,
/// the calibrated server CPU model, open-loop arrivals.
inline std::vector<SweepPoint> ThroughputSweep(SystemKind kind,
                                               uint64_t seed = 77,
                                               bool batching = false) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;

  std::vector<SweepPoint> points;
  for (double target : SweepTargets()) {
    workload::DriverOptions dopts;
    dopts.target_tps = target;
    dopts.duration = (FastMode() ? 6 : 16) * kMicrosPerSecond;
    dopts.warmup = (FastMode() ? 2 : 4) * kMicrosPerSecond;
    dopts.cooldown = (FastMode() ? 1 : 4) * kMicrosPerSecond;

    auto generator = workload::MakeRetwisGenerator(wopts);
    // Paper: up to 8 client machines per DC; we provision enough client
    // slots that the client pool is not the bottleneck below saturation.
    // Fast mode halves the pool — 300 clients still cover 6 k tps with
    // p50 ~12 ms latencies — because idle clients cost simulator events.
    BenchRun run = RunSystem(
        kind, LocalClusterTopology(/*clients_per_dc=*/FastMode() ? 60 : 120),
        generator.get(), dopts, ThroughputCostModel(), seed, batching);
    SweepPoint point;
    point.target_tps = target;
    point.committed_tps = run.result.CommittedTps();
    point.abort_rate = run.result.AbortRate();
    point.dropped_tps =
        static_cast<double>(run.result.dropped) / run.result.window_seconds;
    point.p50_us = run.result.latency.Quantile(0.5);
    point.wanrt = run.wanrt;
    point.has_wanrt = run.has_wanrt;
    points.push_back(point);
  }
  return points;
}

}  // namespace carousel::bench

#endif  // CAROUSEL_BENCH_SWEEP_H_
