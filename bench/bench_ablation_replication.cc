// Ablation A2: replication factor. With 2f+1 replicas, CPC's fast-path
// quorum is ceil(3f/2)+1: for f=1 that is *all three* replicas, for f=2
// it is 4 of 5. Higher f costs more replication traffic and makes the
// supermajority geographically wider, lengthening both paths.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (FastMode() ? 20 : 45) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 4 : 10) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 4 : 10) * kMicrosPerSecond;

  std::printf("== Ablation: replication factor (EC2, Retwis, 200 tps, "
              "Carousel Fast) ==\n\n");
  std::printf("%-14s %6s %12s %9s %9s %8s\n", "replication", "f",
              "fast quorum", "p50(ms)", "p99(ms)", "abort%");

  for (int replication : {3, 5}) {
    Histogram latency;
    double abort_rate = 0;
    for (int rep = 0; rep < Repeats(); ++rep) {
      Topology topo = Topology::PaperEc2();
      topo.PlacePartitions(5, replication);
      for (DcId dc = 0; dc < 5; ++dc) {
        for (int i = 0; i < 20; ++i) topo.AddClient(dc);
      }
      core::CarouselOptions options;
      options.fast_path = true;
      options.local_reads = true;
      core::Cluster cluster(std::move(topo), options, sim::NetworkOptions{},
                            4000 + rep);
      cluster.Start();
      auto adapter = workload::MakeCarouselAdapter(&cluster, "fast");
      auto generator = workload::MakeRetwisGenerator(wopts);
      workload::DriverOptions seeded = dopts;
      seeded.seed = 4000 + rep;
      const workload::RunResult result =
          workload::RunWorkload(adapter.get(), generator.get(), seeded);
      latency.Merge(result.latency);
      abort_rate += result.AbortRate() / Repeats();
    }
    std::printf("%-14d %6d %12d %9.0f %9.0f %7.2f%%\n", replication,
                (replication - 1) / 2,
                core::CarouselServer::SupermajorityFor(replication),
                latency.Quantile(0.5) / 1000.0,
                latency.Quantile(0.99) / 1000.0, 100 * abort_rate);
  }
  std::printf("\nreading: with 5 DCs, f=2 fully replicates every partition, "
              "so every read is local and the 4-of-5 fast quorum can skip "
              "the farthest region - lower latency, but at 5/3 the storage "
              "and replication traffic, which is exactly the cost the paper "
              "argues against for larger deployments (\"not cost-effective\", "
              "SS3.1)\n");
  return 0;
}
