// Figure 6: abort rate versus target throughput on the local cluster
// (§6.4.1), from the same experiment as Figure 5.
//
// Paper result: TAPIR's abort rate spikes sharply once the target exceeds
// ~5,000 tps (the same point its committed throughput collapses).
// Carousel Fast aborts slightly more than Carousel Basic (at 8,000 tps:
// 9% vs 7%) because reading from local replicas can return stale data
// that the coordinator's version check then rejects.

#include <cstdio>

#include "bench/sweep.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  std::printf("== Figure 6: abort rate (%%) vs target throughput (tps), "
              "local cluster, Retwis ==\n\n");
  std::printf("%-10s %16s %16s %16s\n", "target", "TAPIR", "Carousel Basic",
              "Carousel Fast");

  auto tapir = ThroughputSweep(SystemKind::kTapir, /*seed=*/99);
  auto basic = ThroughputSweep(SystemKind::kCarouselBasic, /*seed=*/99);
  auto fast = ThroughputSweep(SystemKind::kCarouselFast, /*seed=*/99);

  for (size_t i = 0; i < tapir.size(); ++i) {
    std::printf("%-10.0f %15.1f%% %15.1f%% %15.1f%%\n", tapir[i].target_tps,
                100 * tapir[i].abort_rate, 100 * basic[i].abort_rate,
                100 * fast[i].abort_rate);
  }

  // Shape checks.
  double tapir_low = 1, tapir_high = 0;
  for (const auto& p : tapir) {
    if (p.target_tps <= 3000) tapir_low = std::min(tapir_low, p.abort_rate);
    tapir_high = std::max(tapir_high, p.abort_rate);
  }
  const auto& basic_top = basic.back();
  const auto& fast_top = fast.back();
  std::printf("\nshape check: TAPIR abort spike under overload: %s "
              "(%.1f%% -> %.1f%%); Carousel Fast >= Basic at top target: %s "
              "(%.1f%% vs %.1f%%; paper 9%% vs 7%% at 8k)\n",
              tapir_high > 4 * std::max(tapir_low, 0.005) ? "YES" : "NO",
              100 * tapir_low, 100 * tapir_high,
              fast_top.abort_rate >= basic_top.abort_rate * 0.9 ? "YES" : "NO",
              100 * fast_top.abort_rate, 100 * basic_top.abort_rate);
  return 0;
}
