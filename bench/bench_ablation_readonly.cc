// Ablation A3: how much of Carousel's Retwis advantage comes from the
// read-only transaction optimization (§4.4.2)? Sweeps the share of
// read-only transactions from 0% to 100% (Retwis has 50%; YCSB+T has 0%)
// and reports medians for all three systems. This explains the Figure 4
// vs Figure 8 difference: without read-only transactions Carousel Basic's
// median rises above TAPIR's, while Carousel Fast stays lowest.

#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace carousel::bench {
namespace {

/// A Retwis-like mix with a configurable read-only share: read-only
/// transactions are Load-Timeline (rand(1,10) gets); read-write
/// transactions are 4-key read-modify-writes.
class MixGenerator final : public workload::Generator {
 public:
  MixGenerator(const workload::WorkloadOptions& options, double ro_share)
      : ro_share_(ro_share),
        ro_(workload::MakeRetwisGenerator(options)),
        rw_(workload::MakeYcsbTGenerator(options)) {}

  workload::TxnSpec Next(Rng* rng) override {
    if (rng->NextDouble() < ro_share_) {
      // Draw read-only transactions from the Retwis generator.
      for (int i = 0; i < 64; ++i) {
        workload::TxnSpec spec = ro_->Next(rng);
        if (spec.read_only()) return spec;
      }
    }
    return rw_->Next(rng);
  }
  std::string name() const override { return "mix"; }

 private:
  double ro_share_;
  std::unique_ptr<workload::Generator> ro_;
  std::unique_ptr<workload::Generator> rw_;
};

}  // namespace
}  // namespace carousel::bench

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (FastMode() ? 20 : 40) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 4 : 10) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 4 : 10) * kMicrosPerSecond;

  std::printf("== Ablation: read-only transaction share (EC2, 200 tps), "
              "median latency (ms) ==\n\n");
  std::printf("%-10s %16s %16s %16s\n", "ro share", "TAPIR",
              "Carousel Basic", "Carousel Fast");

  const std::vector<double> shares =
      FastMode() ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};
  for (double share : shares) {
    double medians[3] = {0, 0, 0};
    int column = 0;
    for (SystemKind kind : {SystemKind::kTapir, SystemKind::kCarouselBasic,
                            SystemKind::kCarouselFast}) {
      MixGenerator generator(wopts, share);
      workload::DriverOptions seeded = dopts;
      BenchRun run = RunSystem(kind, Ec2Topology(20), &generator, seeded,
                               core::ServerCostModel{}, /*seed=*/5000);
      medians[column++] = run.result.latency.Quantile(0.5) / 1000.0;
    }
    std::printf("%-10.0f %16.0f %16.0f %16.0f\n", share * 100, medians[0],
                medians[1], medians[2]);
  }
  std::printf("\nexpected: Carousel's advantage over TAPIR grows with the "
              "read-only share (1-roundtrip reads vs TAPIR's full prepare); "
              "at 0%% Carousel Basic exceeds TAPIR's median (Figure 8 "
              "regime) while Carousel Fast stays lowest\n");
  return 0;
}
