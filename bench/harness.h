#ifndef CAROUSEL_BENCH_HARNESS_H_
#define CAROUSEL_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/cluster.h"
#include "common/topology.h"
#include "obs/wanrt.h"
#include "harness/tapir_cluster.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace carousel::bench {

/// The three systems evaluated in the paper (§5): Carousel Basic (basic
/// transaction protocol), Carousel Fast (CPC + local-replica reads), and
/// the TAPIR baseline.
enum class SystemKind { kCarouselBasic, kCarouselFast, kTapir };

inline const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kCarouselBasic:
      return "Carousel Basic";
    case SystemKind::kCarouselFast:
      return "Carousel Fast";
    case SystemKind::kTapir:
      return "TAPIR";
  }
  return "?";
}

/// True when CAROUSEL_BENCH_FAST=1: shrink run lengths and sweeps for a
/// quick smoke pass.
inline bool FastMode() {
  const char* env = std::getenv("CAROUSEL_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// Number of repetitions per data point (the paper uses 10; we default to
/// 2 and merge the distributions).
inline int Repeats() { return FastMode() ? 1 : 2; }

/// The paper's Amazon EC2 deployment (§6.1): 5 regions with Table 1
/// latencies, 5 partitions x 3 replicas, `clients_per_dc` clients per DC
/// (paper: 4 machines x 5 clients = 20).
inline Topology Ec2Topology(int clients_per_dc = 20) {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

/// The paper's local cluster (§6.4): 5 simulated DCs at 5 ms RTT, 15
/// servers, up to 8 client machines per DC.
inline Topology LocalClusterTopology(int clients_per_dc) {
  Topology topo = Topology::Uniform(5, 5.0);
  topo.set_intra_dc_rtt_micros(200);
  topo.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

/// Server CPU model for the throughput experiments, calibrated so the
/// systems saturate in the same order and at roughly the same ratios as
/// the paper's local cluster (TAPIR knees first, §6.4.1; batched Carousel
/// sustains ~8 k+). Latency experiments (Figures 4 and 8) leave costs at
/// zero: at 200 tps the paper's latencies are WAN-dominated.
///
/// Carousel servers get two message-ingress cores — the paper's Go
/// prototype spends the bulk of its 8 vCPUs inside the gRPC stack, and
/// what its batched RPC layer amortizes away is exactly the per-message
/// framing cost, so the unbatched ablation knees near 5 k tps while
/// batching recovers the paper's 8 k+. The TAPIR baseline runs its
/// reference implementation's single-threaded event loop, which is what
/// makes its servers queue "excessive pending transactions" first
/// (paper §6.4.1). RunSystem applies the single-core override for TAPIR.
inline core::ServerCostModel ThroughputCostModel() {
  core::ServerCostModel cost;
  cost.base = 100;
  cost.per_read_key = 5;
  cost.per_occ_key = 10;
  cost.per_write_key = 10;
  cost.per_log_entry = 10;
  // A message demuxed out of a batch envelope skips the syscall/RPC
  // framing work and pays only dispatch: 1/5 of the standalone base.
  // Inert unless a config turns batching on.
  cost.per_batched_item = 20;
  cost.cores = 2;
  return cost;
}

struct BenchRun {
  workload::RunResult result;
  /// Per-node traffic captured over the measurement window, by node id.
  std::vector<sim::Traffic> traffic;
  /// Node roles at the end of the run ("client", "leader", "follower",
  /// "server"), indexed by node id.
  std::vector<std::string> roles;
  double window_seconds = 0;
  /// WANRT accounting over the measurement window (Carousel systems only;
  /// TAPIR's protocol is not span-instrumented).
  obs::WanrtStats wanrt;
  bool has_wanrt = false;
};

/// Runs one (system, workload) experiment and returns measurement-window
/// results plus traffic accounting.
/// `batching` turns on the egress batcher + delivery coalescing for the
/// Carousel systems (TAPIR has no server-to-server traffic to batch; the
/// flag is ignored there).
inline BenchRun RunSystem(SystemKind kind, Topology topo,
                          workload::Generator* generator,
                          workload::DriverOptions driver_options,
                          const core::ServerCostModel& cost,
                          uint64_t seed, bool batching = false) {
  BenchRun out;
  driver_options.seed = seed;

  auto capture = [&](workload::SystemAdapter* adapter,
                     auto role_of) {
    sim::Network& net = adapter->network();
    // Measure traffic over [warmup, duration - cooldown].
    adapter->sim().ScheduleAt(driver_options.warmup,
                              [&net]() { net.ResetTraffic(); });
    const SimTime window_end =
        driver_options.duration - driver_options.cooldown;
    auto snapshot = std::make_shared<std::vector<sim::Traffic>>();
    const size_t num_nodes = adapter->network().topology().nodes().size();
    adapter->sim().ScheduleAt(window_end, [&net, snapshot, num_nodes]() {
      for (size_t i = 0; i < num_nodes; ++i) {
        snapshot->push_back(net.traffic(static_cast<NodeId>(i)));
      }
    });
    out.result = workload::RunWorkload(adapter, generator, driver_options);
    out.traffic = *snapshot;
    out.window_seconds = out.result.window_seconds;
    for (size_t i = 0; i < num_nodes; ++i) {
      out.roles.push_back(role_of(static_cast<NodeId>(i)));
    }
  };

  if (kind == SystemKind::kTapir) {
    tapir::TapirOptions options;
    options.cost = cost;
    // TAPIR's reference implementation processes requests on a single
    // event loop per server.
    if (cost.base > 0) options.cost.cores = 1;
    // Scale the fast-path timeout to the deployment's RTT.
    options.fast_path_timeout =
        topo.RttMicros(0, 1) > 50 * kMicrosPerMilli ? 500'000 : 30'000;
    tapir::TapirCluster cluster(std::move(topo), options,
                                sim::NetworkOptions{}, seed);
    auto adapter = workload::MakeTapirAdapter(&cluster);
    capture(adapter.get(), [&cluster](NodeId id) -> std::string {
      return cluster.topology().node(id).is_client ? "client" : "server";
    });
    return out;
  }

  core::CarouselOptions options;
  options.cost = cost;
  // WANRT accounting is on for every bench run: the observer executes in
  // zero simulated time, so throughput/latency numbers are bit-identical
  // with it enabled, and every BENCH_*.json gets a per-phase WANRT block.
  options.metrics.enabled = true;
  options.batching.enabled = batching;
  options.batching.coalesce_deliveries = batching;
  // A wider window than the 50 us default: at saturation the hot
  // server-to-server edges carry one message every ~150 us, so this is
  // what gets average batch sizes past ~2; the added latency is noise
  // against the 5 ms inter-DC RTT.
  options.batching.flush_interval = 400;
  if (kind == SystemKind::kCarouselFast) {
    options.fast_path = true;
    options.local_reads = true;
  }
  core::Cluster cluster(std::move(topo), options, sim::NetworkOptions{}, seed);
  cluster.Start();
  // Align the WANRT measurement window with the traffic window: drop the
  // warmup's accounting, snapshot at window end.
  cluster.sim().ScheduleAt(driver_options.warmup,
                           [&cluster]() { cluster.wanrt().ResetStats(); });
  auto wanrt_snapshot = std::make_shared<obs::WanrtStats>();
  cluster.sim().ScheduleAt(
      driver_options.duration - driver_options.cooldown,
      [&cluster, wanrt_snapshot]() { *wanrt_snapshot = cluster.wanrt().stats(); });
  auto adapter = workload::MakeCarouselAdapter(&cluster, SystemName(kind));
  capture(adapter.get(), [&cluster](NodeId id) -> std::string {
    const NodeInfo& info = cluster.topology().node(id);
    if (info.is_client) return "client";
    return cluster.server(id)->raft()->is_leader() ? "leader" : "follower";
  });
  out.wanrt = *wanrt_snapshot;
  out.has_wanrt = true;
  return out;
}

/// Machine-readable results sink: collects (config, metric, value) triples
/// and writes them as `BENCH_<name>.json` when destroyed (or on Write()).
/// Every bench funnels its headline numbers — medians, tails, throughput —
/// through one of these so sweeps and CI can diff runs without scraping
/// the human-oriented tables. Set CAROUSEL_BENCH_JSON_DIR to redirect the
/// output directory (default: current working directory).
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : name_(std::move(bench_name)) {}
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Write(); }

  /// Records one scalar under `config` (insertion order is preserved).
  void Metric(const std::string& config, const std::string& metric,
              double value) {
    Config(config).emplace_back(metric, value);
  }

  /// Convenience: the standard latency triple, in milliseconds.
  void Latencies(const std::string& config, const std::string& prefix,
                 const Histogram& h) {
    Metric(config, prefix + "_p50_ms", h.Quantile(0.50) / 1000.0);
    Metric(config, prefix + "_p95_ms", h.Quantile(0.95) / 1000.0);
    Metric(config, prefix + "_p99_ms", h.Quantile(0.99) / 1000.0);
  }

  /// The per-phase WANRT block: protocol-path counts and causal hop
  /// depths from the run's ledger. Everything here is a deterministic
  /// count — bench_gate.py holds `wanrt_`-prefixed metrics to exact
  /// equality, not the latency tolerance. No-op when the run has no
  /// ledger (TAPIR).
  void Wanrt(const std::string& config, const BenchRun& run) {
    if (!run.has_wanrt) return;
    Wanrt(config, run.wanrt);
  }

  /// Same block from a raw ledger snapshot, for benches that drive
  /// core::Cluster directly instead of going through RunSystem.
  void Wanrt(const std::string& config, const obs::WanrtStats& s) {
    Metric(config, "wanrt_committed", static_cast<double>(s.committed));
    Metric(config, "wanrt_fast_path_txns",
           static_cast<double>(s.fast_path_txns));
    Metric(config, "wanrt_slow_path_txns",
           static_cast<double>(s.slow_path_txns));
    Metric(config, "wanrt_degraded_txns",
           static_cast<double>(s.degraded_txns));
    Metric(config, "wanrt_rw_p50_wanrts",
           obs::WanrtStats::HopsQuantile(s.rw_decided_hops, 0.5) / 2.0);
    Metric(config, "wanrt_rw_max_wanrts",
           obs::WanrtStats::MaxHops(s.rw_decided_hops) / 2.0);
    Metric(config, "wanrt_ro_p50_wanrts",
           obs::WanrtStats::HopsQuantile(s.ro_decided_hops, 0.5) / 2.0);
    Metric(config, "wanrt_ro_max_wanrts",
           obs::WanrtStats::MaxHops(s.ro_decided_hops) / 2.0);
    for (int p = 0; p < obs::kNumWanrtPhases; ++p) {
      const std::string phase =
          obs::WanrtPhaseName(static_cast<obs::WanrtPhase>(p));
      Metric(config, "wanrt_phase_" + phase + "_max_hops",
             static_cast<double>(s.max_phase_hops[p]));
    }
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string dir = ".";
    if (const char* env = std::getenv("CAROUSEL_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"configs\": [",
                 Escaped(name_).c_str());
    for (size_t i = 0; i < configs_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"metrics\": {",
                   i == 0 ? "" : ",", Escaped(configs_[i].first).c_str());
      const auto& metrics = configs_[i].second;
      for (size_t j = 0; j < metrics.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %.6g", j == 0 ? "" : ", ",
                     Escaped(metrics[j].first).c_str(), metrics[j].second);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
  }

 private:
  using Metrics = std::vector<std::pair<std::string, double>>;

  Metrics& Config(const std::string& config) {
    for (auto& [name, metrics] : configs_) {
      if (name == config) return metrics;
    }
    configs_.emplace_back(config, Metrics{});
    return configs_.back().second;
  }

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, Metrics>> configs_;
  bool written_ = false;
};

/// Prints a CDF as (latency_ms, cumulative fraction) rows, thinned to at
/// most `max_rows` points.
inline void PrintCdf(const std::string& label, const Histogram& histogram,
                     size_t max_rows = 40) {
  auto points = histogram.CdfPoints();
  const size_t stride = points.size() > max_rows ? points.size() / max_rows : 1;
  std::printf("# CDF %s (latency_ms cumulative_fraction)\n", label.c_str());
  for (size_t i = 0; i < points.size(); i += stride) {
    std::printf("%-22s %8.1f %8.4f\n", label.c_str(), points[i].first,
                points[i].second);
  }
  if (!points.empty()) {
    std::printf("%-22s %8.1f %8.4f\n", label.c_str(), points.back().first,
                points.back().second);
  }
}

}  // namespace carousel::bench

#endif  // CAROUSEL_BENCH_HARNESS_H_
