// Table 2: transaction profile for Retwis (from TAPIR).
//
// Regenerates the table by sampling the workload generator and reporting
// the observed mix and operation counts next to the paper's numbers.

#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "common/rng.h"
#include "workload/workload.h"

int main() {
  using namespace carousel;
  workload::WorkloadOptions options;
  options.num_keys = 1'000'000;
  auto generator = workload::MakeRetwisGenerator(options);
  Rng rng(1);

  const int kDraws = bench::FastMode() ? 100000 : 1000000;
  std::map<std::string, int> mix;
  std::map<std::string, long long> gets, puts;
  std::map<std::string, int> min_gets, max_gets;
  long long total_keys = 0;
  for (int i = 0; i < kDraws; ++i) {
    const workload::TxnSpec spec = generator->Next(&rng);
    mix[spec.type]++;
    gets[spec.type] += spec.reads.size();
    puts[spec.type] += spec.writes.size();
    std::set<Key> distinct(spec.reads.begin(), spec.reads.end());
    distinct.insert(spec.writes.begin(), spec.writes.end());
    total_keys += distinct.size();
    auto [it, inserted] = min_gets.try_emplace(spec.type, 1 << 30);
    it->second = std::min<int>(it->second, spec.reads.size());
    max_gets[spec.type] =
        std::max<int>(max_gets[spec.type], spec.reads.size());
  }

  std::printf("== Table 2: transaction profile for Retwis (%d samples) ==\n",
              kDraws);
  std::printf("%-18s %10s %10s %12s %12s\n", "Transaction Type", "# gets",
              "# puts", "measured %", "paper %");
  struct Row {
    const char* key;
    const char* name;
    const char* gets;
    const char* puts;
    double paper;
  };
  const Row rows[] = {
      {"add_user", "Add User", "1", "3", 5.0},
      {"follow", "Follow/Unfollow", "2", "2", 15.0},
      {"post_tweet", "Post Tweet", "3", "5", 30.0},
      {"load_timeline", "Load Timeline", "rand(1,10)", "0", 50.0},
  };
  for (const Row& row : rows) {
    const int n = mix[row.key];
    std::printf("%-18s %10s %10s %11.2f%% %11.1f%%\n", row.name, row.gets,
                row.puts, 100.0 * n / kDraws, row.paper);
    // Sanity: measured per-type op counts match the declared ones.
    if (std::string(row.key) == "load_timeline") {
      std::printf("%-18s   measured gets: min=%d max=%d avg=%.2f\n", "",
                  min_gets[row.key], max_gets[row.key],
                  static_cast<double>(gets[row.key]) / n);
    } else {
      std::printf("%-18s   measured gets=%.2f puts=%.2f\n", "",
                  static_cast<double>(gets[row.key]) / n,
                  static_cast<double>(puts[row.key]) / n);
    }
  }
  std::printf("average distinct keys per transaction: %.2f "
              "(paper: ~4.5)\n",
              static_cast<double>(total_keys) / kDraws);
  return 0;
}
