// Table 2: transaction profile for Retwis (from TAPIR).
//
// Regenerates the table by sampling the workload generator and reporting
// the observed mix and operation counts next to the paper's numbers.

// A second section runs the mix through a real (simulated) Carousel Fast
// deployment and profiles it from the recorded per-transaction phase
// traces: executed read-only/read-write split, fast-path share, phase
// medians, and abort reasons.

#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "common/rng.h"
#include "workload/workload.h"

int main() {
  using namespace carousel;
  workload::WorkloadOptions options;
  options.num_keys = 1'000'000;
  auto generator = workload::MakeRetwisGenerator(options);
  Rng rng(1);

  const int kDraws = bench::FastMode() ? 100000 : 1000000;
  std::map<std::string, int> mix;
  std::map<std::string, long long> gets, puts;
  std::map<std::string, int> min_gets, max_gets;
  long long total_keys = 0;
  for (int i = 0; i < kDraws; ++i) {
    const workload::TxnSpec spec = generator->Next(&rng);
    mix[spec.type]++;
    gets[spec.type] += spec.reads.size();
    puts[spec.type] += spec.writes.size();
    std::set<Key> distinct(spec.reads.begin(), spec.reads.end());
    distinct.insert(spec.writes.begin(), spec.writes.end());
    total_keys += distinct.size();
    auto [it, inserted] = min_gets.try_emplace(spec.type, 1 << 30);
    it->second = std::min<int>(it->second, spec.reads.size());
    max_gets[spec.type] =
        std::max<int>(max_gets[spec.type], spec.reads.size());
  }

  std::printf("== Table 2: transaction profile for Retwis (%d samples) ==\n",
              kDraws);
  std::printf("%-18s %10s %10s %12s %12s\n", "Transaction Type", "# gets",
              "# puts", "measured %", "paper %");
  struct Row {
    const char* key;
    const char* name;
    const char* gets;
    const char* puts;
    double paper;
  };
  const Row rows[] = {
      {"add_user", "Add User", "1", "3", 5.0},
      {"follow", "Follow/Unfollow", "2", "2", 15.0},
      {"post_tweet", "Post Tweet", "3", "5", 30.0},
      {"load_timeline", "Load Timeline", "rand(1,10)", "0", 50.0},
  };
  for (const Row& row : rows) {
    const int n = mix[row.key];
    std::printf("%-18s %10s %10s %11.2f%% %11.1f%%\n", row.name, row.gets,
                row.puts, 100.0 * n / kDraws, row.paper);
    // Sanity: measured per-type op counts match the declared ones.
    if (std::string(row.key) == "load_timeline") {
      std::printf("%-18s   measured gets: min=%d max=%d avg=%.2f\n", "",
                  min_gets[row.key], max_gets[row.key],
                  static_cast<double>(gets[row.key]) / n);
    } else {
      std::printf("%-18s   measured gets=%.2f puts=%.2f\n", "",
                  static_cast<double>(gets[row.key]) / n,
                  static_cast<double>(puts[row.key]) / n);
    }
  }
  std::printf("average distinct keys per transaction: %.2f "
              "(paper: ~4.5)\n",
              static_cast<double>(total_keys) / kDraws);

  // ---- Executed profile, from recorded transaction traces ----
  bench::JsonReporter json("table2_retwis_profile");
  json.Metric("generator", "avg_distinct_keys",
              static_cast<double>(total_keys) / kDraws);
  for (const Row& row : rows) {
    json.Metric("generator", std::string(row.key) + "_pct",
                100.0 * mix[row.key] / kDraws);
  }

  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (bench::FastMode() ? 10 : 30) * kMicrosPerSecond;
  dopts.warmup = 2 * kMicrosPerSecond;
  dopts.cooldown = 2 * kMicrosPerSecond;
  dopts.seed = 7000;

  core::CarouselOptions copts;
  copts.fast_path = true;
  copts.local_reads = true;
  copts.metrics.enabled = true;
  core::Cluster cluster(bench::Ec2Topology(20), copts, sim::NetworkOptions{},
                        7000);
  cluster.Start();
  auto adapter = workload::MakeCarouselAdapter(&cluster, "Carousel Fast");
  workload::RunWorkload(adapter.get(), generator.get(), dopts);

  const TraceStats& stats = cluster.traces().stats();
  const uint64_t sealed = stats.committed + stats.aborted;
  const uint64_t read_write = sealed - stats.read_only;
  std::printf("\n== Executed profile (Carousel Fast, EC2, 200 tps; from "
              "recorded phase traces) ==\n");
  std::printf("transactions traced: %llu (%llu read-only, %llu read-write)\n",
              (unsigned long long)sealed, (unsigned long long)stats.read_only,
              (unsigned long long)read_write);
  std::printf("committed: %llu  aborted: %llu  CPC fast-path share: %.1f%%\n",
              (unsigned long long)stats.committed,
              (unsigned long long)stats.aborted,
              100.0 * stats.FastPathFraction());
  std::printf("phase medians (ms): read %.0f  commit %.0f  "
              "prepare-fast %.0f  writeback %.0f\n",
              stats.read_phase.Quantile(0.5) / 1000.0,
              stats.commit_phase.Quantile(0.5) / 1000.0,
              stats.prepare_fast.Quantile(0.5) / 1000.0,
              stats.writeback.Quantile(0.5) / 1000.0);
  for (const auto& [reason, count] : stats.abort_reasons) {
    std::printf("abort reason %-22s %llu\n",
                reason.empty() ? "(none)" : reason.c_str(),
                (unsigned long long)count);
  }

  json.Metric("executed", "traced", static_cast<double>(sealed));
  json.Metric("executed", "read_only", static_cast<double>(stats.read_only));
  json.Metric("executed", "committed", static_cast<double>(stats.committed));
  json.Metric("executed", "aborted", static_cast<double>(stats.aborted));
  json.Metric("executed", "fast_path_fraction", stats.FastPathFraction());
  json.Metric("executed", "read_p50_ms",
              stats.read_phase.Quantile(0.5) / 1000.0);
  json.Metric("executed", "commit_p50_ms",
              stats.commit_phase.Quantile(0.5) / 1000.0);
  json.Metric("executed", "writeback_p50_ms",
              stats.writeback.Quantile(0.5) / 1000.0);
  json.Wanrt("executed", cluster.wanrt().stats());
  return 0;
}
