// Figure 8: latency CDF for the YCSB+T workload (4 read-modify-writes per
// transaction) on the EC2 topology at 200 tps.
//
// Paper result (§6.5): Carousel Fast is fastest across the distribution
// (median 259 ms). With no read-only transactions, Carousel Basic loses
// its read-only optimization and always needs two WANRTs (median 400 ms);
// TAPIR's fast path gives it a lower median than Basic (337 ms) but worse
// tail latencies (slow-path fallback needs three WANRTs).

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;

  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  if (FastMode()) {
    dopts.duration = 30 * kMicrosPerSecond;
    dopts.warmup = 5 * kMicrosPerSecond;
    dopts.cooldown = 5 * kMicrosPerSecond;
  } else {
    // Paper proportions (90/30/30) at 60 s; the distribution is
    // stationary so the quantiles are unchanged.
    dopts.duration = 60 * kMicrosPerSecond;
    dopts.warmup = 20 * kMicrosPerSecond;
    dopts.cooldown = 20 * kMicrosPerSecond;
  }

  std::printf("== Figure 8: YCSB+T latency CDF, EC2 topology, 200 tps ==\n");
  std::printf("paper medians: Carousel Basic 400 ms, TAPIR 337 ms, "
              "Carousel Fast 259 ms\n\n");

  struct Line {
    SystemKind kind;
    Histogram latency;
  };
  Line lines[] = {{SystemKind::kTapir, {}},
                  {SystemKind::kCarouselBasic, {}},
                  {SystemKind::kCarouselFast, {}}};

  for (Line& line : lines) {
    for (int rep = 0; rep < Repeats(); ++rep) {
      auto generator = workload::MakeYcsbTGenerator(wopts);
      BenchRun run = RunSystem(line.kind, Ec2Topology(20), generator.get(),
                               dopts, core::ServerCostModel{},
                               /*seed=*/2000 + rep);
      line.latency.Merge(run.result.latency);
    }
  }

  std::printf("%-16s %9s %9s %9s %9s %9s\n", "system", "p50(ms)", "p75(ms)",
              "p90(ms)", "p95(ms)", "p99(ms)");
  for (const Line& line : lines) {
    std::printf("%-16s %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                SystemName(line.kind), line.latency.Quantile(0.5) / 1000.0,
                line.latency.Quantile(0.75) / 1000.0,
                line.latency.Quantile(0.9) / 1000.0,
                line.latency.Quantile(0.95) / 1000.0,
                line.latency.Quantile(0.99) / 1000.0);
  }
  std::printf("\n");
  for (const Line& line : lines) {
    PrintCdf(SystemName(line.kind), line.latency);
  }

  const double tapir_p50 = lines[0].latency.Quantile(0.5);
  const double tapir_p95 = lines[0].latency.Quantile(0.95);
  const double basic_p50 = lines[1].latency.Quantile(0.5);
  const double basic_p95 = lines[1].latency.Quantile(0.95);
  const double fast_p50 = lines[2].latency.Quantile(0.5);
  std::printf("\nshape check: fast median lowest: %s; tapir median < basic "
              "median: %s; tapir tail (p95) > basic tail: %s\n",
              (fast_p50 < basic_p50 && fast_p50 < tapir_p50) ? "YES" : "NO",
              tapir_p50 < basic_p50 ? "YES" : "NO",
              tapir_p95 > basic_p95 ? "YES" : "NO");
  return 0;
}
