// Microbenchmarks (google-benchmark) for the hot data structures under
// the protocols: pending-list OCC checks, the versioned store, workload
// generation, and the simulator core. Not a paper artifact; used to keep
// the simulation fast enough for the throughput sweeps.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/consistent_hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/topology.h"
#include "common/zipfian.h"
#include "kv/pending_list.h"
#include "kv/versioned_store.h"
#include "runtime/arena.h"
#include "runtime/batcher.h"
#include "sim/network.h"
#include "runtime/endpoint.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace carousel {
namespace {

void BM_PendingListConflictCheck(benchmark::State& state) {
  kv::PendingList list;
  const int pending = static_cast<int>(state.range(0));
  for (int i = 0; i < pending; ++i) {
    kv::PendingTxn txn;
    txn.tid = {1, static_cast<uint64_t>(i)};
    txn.read_keys = {"r" + std::to_string(i)};
    txn.write_keys = {"w" + std::to_string(i)};
    list.Add(std::move(txn)).ok();
  }
  const KeyList reads = {"rx", "ry"};
  const KeyList writes = {"wx"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.HasConflict(reads, writes));
  }
}
BENCHMARK(BM_PendingListConflictCheck)->Arg(16)->Arg(256)->Arg(4096);

void BM_PendingListAddRemove(benchmark::State& state) {
  kv::PendingList list;
  uint64_t i = 0;
  for (auto _ : state) {
    kv::PendingTxn txn;
    txn.tid = {1, i++};
    txn.read_keys = {"a", "b"};
    txn.write_keys = {"c"};
    list.Add(std::move(txn)).ok();
    list.Remove({1, i - 1});
  }
}
BENCHMARK(BM_PendingListAddRemove);

void BM_VersionedStoreApply(benchmark::State& state) {
  kv::VersionedStore store;
  Rng rng(1);
  for (auto _ : state) {
    store.Apply("k" + std::to_string(rng.NextU64() % 100000), "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreApply);

void BM_VersionedStoreGet(benchmark::State& state) {
  kv::VersionedStore store;
  for (int i = 0; i < 100000; ++i) {
    store.Apply("k" + std::to_string(i), "value");
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Get("k" + std::to_string(rng.NextU64() % 100000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreGet);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator zipf(10'000'000, 0.75);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_RetwisGenerate(benchmark::State& state) {
  workload::WorkloadOptions options;
  options.num_keys = 1'000'000;
  auto generator = workload::MakeRetwisGenerator(options);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Next(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RetwisGenerate);

void BM_ConsistentHashLookup(benchmark::State& state) {
  ConsistentHashRing ring(5, 64);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.PartitionFor("key" + std::to_string(rng.NextU64() % 1000000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(6);
  for (auto _ : state) {
    histogram.Record(static_cast<int64_t>(rng.NextU64() % 1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [] {});
    }
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

/// The realistic event shape: captures that overflow std::function's
/// 16-byte small buffer (EventFn keeps them inline) and a mix of
/// near-future deliveries with a sparse far-future timer tail, which is
/// what the calendar event queue is tuned for.
void BM_SimulatorDeliveryPattern(benchmark::State& state) {
  struct Payload {
    uint64_t sum = 0;
  };
  auto shared = std::make_shared<Payload>();
  for (auto _ : state) {
    sim::Simulator sim(1);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      const NodeId from = static_cast<NodeId>(i % 16);
      const NodeId to = static_cast<NodeId>((i * 7) % 16);
      // Delivery-like captures: two ids + a shared_ptr (40 bytes).
      sim.Schedule(static_cast<SimTime>(rng.UniformInt(0, 5000)),
                   [shared, from, to] {
                     shared->sum += static_cast<uint64_t>(from + to);
                   });
      if (i % 50 == 0) {
        // Timer-like far-future event (overflow heap territory).
        sim.Schedule(static_cast<SimTime>(1'000'000 + i), [shared] {
          shared->sum++;
        });
      }
    }
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * 1020);
}
BENCHMARK(BM_SimulatorDeliveryPattern);

struct BenchMsg final : sim::Message {
  uint64_t a = 0, b = 0;
  int type() const override { return sim::kPing; }
  size_t SizeBytes() const override { return 24; }
};

/// Pooled message allocation (runtime/arena.h) as used by every protocol send.
void BM_ArenaMakeMessage(benchmark::State& state) {
  for (auto _ : state) {
    auto msg = runtime::MakeMessage<BenchMsg>();
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaMakeMessage);

class SinkNode : public runtime::Endpoint {
 public:
  using runtime::Endpoint::Endpoint;
  void HandleMessage(NodeId /*from*/,
                     const sim::MessagePtr& /*msg*/) override {
    received_++;
  }
  uint64_t received_ = 0;
};

/// Egress batcher hot path: bursts to one destination, drained through
/// the network each window.
void BM_BatcherSendFlush(benchmark::State& state) {
  sim::Simulator sim(1);
  Topology topo = Topology::Uniform(1, 1.0);
  topo.AddClient(0);
  topo.AddClient(0);
  sim::Network net(&sim, &topo, sim::NetworkOptions{});
  SinkNode sender(0, 0), receiver(1, 0);
  net.Register(&sender);
  net.Register(&receiver);
  runtime::MessageBatcher::Options opts;
  opts.flush_interval = 50;
  runtime::MessageBatcher batcher(&sender, opts);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      batcher.Send(1, runtime::MakeMessage<BenchMsg>());
    }
    sim.RunFor(100);
  }
  benchmark::DoNotOptimize(receiver.received_);
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_BatcherSendFlush);

}  // namespace
}  // namespace carousel

BENCHMARK_MAIN();
