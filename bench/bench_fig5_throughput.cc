// Figure 5: committed throughput versus target throughput on the local
// cluster (§6.4.1), plus the batching ablation.
//
// Paper setup: 15 servers across 5 simulated DCs with 5 ms inter-DC RTT,
// Retwis workload, open-loop target throughput swept to 10,000 tps.
// Paper result: all three systems satisfy ~5,000 tps; past that TAPIR's
// committed throughput drops precipitously (queueing of pending
// transactions); Carousel Basic keeps climbing and only falls below the
// target around 8,000 tps; Carousel Fast levels off around 8,000 tps
// because it sends more messages per transaction than Basic.
//
// The batched configs rerun the Carousel systems with the egress batcher
// on (options.batching): servers pay the per-message base cost once per
// envelope instead of once per message, so the CPU-bound knee moves up.
// The paper's Go prototype batches inside its RPC layer, so the batched
// configs are the ones that track the paper's curve (~7 k+ before the
// knee); the unbatched ablation knees near 4-5 k, which is the point of
// the comparison. TAPIR has no server-to-server traffic to batch and is
// not rerun.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "bench/sweep.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  std::printf("== Figure 5: committed vs target throughput (tps), local "
              "cluster, Retwis ==\n\n");
  std::printf("%-10s %16s %16s %16s %16s %16s\n", "target", "TAPIR",
              "Carousel Basic", "Carousel Fast", "Basic (batched)",
              "Fast (batched)");

  auto tapir = ThroughputSweep(SystemKind::kTapir);
  auto basic = ThroughputSweep(SystemKind::kCarouselBasic);
  auto fast = ThroughputSweep(SystemKind::kCarouselFast);
  auto basic_b =
      ThroughputSweep(SystemKind::kCarouselBasic, 77, /*batching=*/true);
  auto fast_b =
      ThroughputSweep(SystemKind::kCarouselFast, 77, /*batching=*/true);

  JsonReporter json("fig5_throughput");
  double tapir_peak = 0, basic_peak = 0, fast_peak = 0;
  double basic_b_peak = 0, fast_b_peak = 0;
  for (size_t i = 0; i < tapir.size(); ++i) {
    std::printf("%-10.0f %16.0f %16.0f %16.0f %16.0f %16.0f\n",
                tapir[i].target_tps, tapir[i].committed_tps,
                basic[i].committed_tps, fast[i].committed_tps,
                basic_b[i].committed_tps, fast_b[i].committed_tps);
    tapir_peak = std::max(tapir_peak, tapir[i].committed_tps);
    basic_peak = std::max(basic_peak, basic[i].committed_tps);
    fast_peak = std::max(fast_peak, fast[i].committed_tps);
    basic_b_peak = std::max(basic_b_peak, basic_b[i].committed_tps);
    fast_b_peak = std::max(fast_b_peak, fast_b[i].committed_tps);
    const std::string metric =
        "committed_tps_at_" + std::to_string((long long)tapir[i].target_tps);
    json.Metric("TAPIR", metric, tapir[i].committed_tps);
    json.Metric("Carousel Basic", metric, basic[i].committed_tps);
    json.Metric("Carousel Fast", metric, fast[i].committed_tps);
    json.Metric("Carousel Basic (batched)", metric, basic_b[i].committed_tps);
    json.Metric("Carousel Fast (batched)", metric, fast_b[i].committed_tps);
  }
  json.Metric("TAPIR", "peak_tps", tapir_peak);
  json.Metric("Carousel Basic", "peak_tps", basic_peak);
  json.Metric("Carousel Fast", "peak_tps", fast_peak);
  json.Metric("Carousel Basic (batched)", "peak_tps", basic_b_peak);
  json.Metric("Carousel Fast (batched)", "peak_tps", fast_b_peak);
  json.Metric("Carousel Basic (batched)", "batching_peak_speedup",
              basic_peak > 0 ? basic_b_peak / basic_peak : 0);
  json.Metric("Carousel Fast (batched)", "batching_peak_speedup",
              fast_peak > 0 ? fast_b_peak / fast_peak : 0);
  // Per-phase WANRT block at the lowest (uncongested) target, where the
  // hop counts reflect the protocol rather than queueing.
  if (basic[0].has_wanrt) json.Wanrt("Carousel Basic", basic[0].wanrt);
  if (fast[0].has_wanrt) json.Wanrt("Carousel Fast", fast[0].wanrt);
  if (basic_b[0].has_wanrt) {
    json.Wanrt("Carousel Basic (batched)", basic_b[0].wanrt);
  }
  if (fast_b[0].has_wanrt) {
    json.Wanrt("Carousel Fast (batched)", fast_b[0].wanrt);
  }

  std::printf("\nunbatched peaks: TAPIR %.0f, Carousel Basic %.0f, "
              "Carousel Fast %.0f\n",
              tapir_peak, basic_peak, fast_peak);
  std::printf("batched peaks: Basic %.0f (%.2fx), Fast %.0f (%.2fx) "
              "(paper: TAPIR ~5000, Basic >8000, Fast ~8000)\n",
              basic_b_peak, basic_peak > 0 ? basic_b_peak / basic_peak : 0,
              fast_b_peak, fast_peak > 0 ? fast_b_peak / fast_peak : 0);
  const bool tapir_collapses =
      tapir.back().committed_tps < 0.8 * tapir_peak ||
      tapir_peak < 0.75 * basic_b_peak;
  std::printf("shape check: TAPIR saturates first: %s; Carousel Basic peak "
              ">= Fast peak: %s; batching >= 1.3x at the CPU-bound point: "
              "%s\n",
              tapir_collapses && tapir_peak < basic_b_peak ? "YES" : "NO",
              basic_peak >= 0.95 * fast_peak &&
                      basic_b_peak >= 0.95 * fast_b_peak
                  ? "YES"
                  : "NO",
              basic_b_peak >= 1.3 * basic_peak && fast_b_peak >= 1.3 * fast_peak
                  ? "YES"
                  : "NO");
  return 0;
}
