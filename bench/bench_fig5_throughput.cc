// Figure 5: committed throughput versus target throughput on the local
// cluster (§6.4.1).
//
// Paper setup: 15 servers across 5 simulated DCs with 5 ms inter-DC RTT,
// Retwis workload, open-loop target throughput swept to 10,000 tps.
// Paper result: all three systems satisfy ~5,000 tps; past that TAPIR's
// committed throughput drops precipitously (queueing of pending
// transactions); Carousel Basic keeps climbing and only falls below the
// target around 8,000 tps; Carousel Fast levels off around 8,000 tps
// because it sends more messages per transaction than Basic.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "bench/sweep.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  std::printf("== Figure 5: committed vs target throughput (tps), local "
              "cluster, Retwis ==\n\n");
  std::printf("%-10s %16s %16s %16s\n", "target", "TAPIR", "Carousel Basic",
              "Carousel Fast");

  auto tapir = ThroughputSweep(SystemKind::kTapir);
  auto basic = ThroughputSweep(SystemKind::kCarouselBasic);
  auto fast = ThroughputSweep(SystemKind::kCarouselFast);

  JsonReporter json("fig5_throughput");
  double tapir_peak = 0, basic_peak = 0, fast_peak = 0;
  for (size_t i = 0; i < tapir.size(); ++i) {
    std::printf("%-10.0f %16.0f %16.0f %16.0f\n", tapir[i].target_tps,
                tapir[i].committed_tps, basic[i].committed_tps,
                fast[i].committed_tps);
    tapir_peak = std::max(tapir_peak, tapir[i].committed_tps);
    basic_peak = std::max(basic_peak, basic[i].committed_tps);
    fast_peak = std::max(fast_peak, fast[i].committed_tps);
    const std::string metric =
        "committed_tps_at_" + std::to_string((long long)tapir[i].target_tps);
    json.Metric("TAPIR", metric, tapir[i].committed_tps);
    json.Metric("Carousel Basic", metric, basic[i].committed_tps);
    json.Metric("Carousel Fast", metric, fast[i].committed_tps);
  }
  json.Metric("TAPIR", "peak_tps", tapir_peak);
  json.Metric("Carousel Basic", "peak_tps", basic_peak);
  json.Metric("Carousel Fast", "peak_tps", fast_peak);

  std::printf("\npeaks: TAPIR %.0f, Carousel Basic %.0f, Carousel Fast %.0f "
              "(paper: ~5000 / >8000 / ~8000)\n",
              tapir_peak, basic_peak, fast_peak);
  const bool tapir_collapses =
      tapir.back().committed_tps < 0.8 * tapir_peak ||
      tapir_peak < 0.75 * basic_peak;
  std::printf("shape check: TAPIR saturates first: %s; Carousel Basic peak "
              ">= Fast peak: %s\n",
              tapir_collapses && tapir_peak < basic_peak ? "YES" : "NO",
              basic_peak >= 0.95 * fast_peak ? "YES" : "NO");
  return 0;
}
