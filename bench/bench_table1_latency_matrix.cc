// Table 1: roundtrip network latencies between datacenters.
//
// The paper measured these on EC2; here they are the simulator's input.
// This harness verifies the simulation substrate reproduces them: it
// echoes a ping between every DC pair and reports measured vs configured
// RTT (the small excess is jitter, which deliveries also experience).

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "sim/network.h"
#include "runtime/endpoint.h"
#include "sim/simulator.h"

namespace carousel {
namespace {

struct PingMsg final : sim::Message {
  bool is_reply = false;
  int type() const override { return sim::kPing; }
  size_t SizeBytes() const override { return 64; }
};

class EchoNode : public runtime::Endpoint {
 public:
  EchoNode(NodeId id, DcId dc) : runtime::Endpoint(id, dc) {}
  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override {
    const auto& ping = sim::As<PingMsg>(*msg);
    if (ping.is_reply) {
      rtt_sum += now() - sent_at;
      replies++;
      return;
    }
    auto reply = std::make_shared<PingMsg>();
    reply->is_reply = true;
    Send(from, std::move(reply));
  }
  SimTime sent_at = 0;
  SimTime rtt_sum = 0;
  int replies = 0;
};

}  // namespace
}  // namespace carousel

int main() {
  using namespace carousel;
  std::printf("== Table 1: roundtrip latencies between datacenters (ms) ==\n");
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 1);  // One echo node per DC.

  std::printf("%-12s", "");
  for (DcId b = 1; b < 5; ++b) std::printf("%12s", topo.dc_name(b).c_str());
  std::printf("\n");

  const int kPings = 20;
  for (DcId a = 0; a < 4; ++a) {
    std::printf("%-12s", topo.dc_name(a).c_str());
    for (DcId b = 1; b < 5; ++b) {
      if (b <= a) {
        std::printf("%12s", "-");
        continue;
      }
      sim::Simulator sim(1);
      sim::Network net(&sim, &topo, sim::NetworkOptions{});
      std::vector<std::unique_ptr<EchoNode>> nodes;
      for (const NodeInfo& info : topo.nodes()) {
        nodes.push_back(std::make_unique<EchoNode>(info.id, info.dc));
        net.Register(nodes.back().get());
      }
      EchoNode* src = nodes[a].get();
      for (int i = 0; i < kPings; ++i) {
        sim.Schedule(i * 1000, [&net, src, b]() {
          src->sent_at = src->now();
          net.Send(src->id(), b, std::make_shared<PingMsg>());
        });
        sim.RunFor(1000 * 1000);
      }
      const double measured_ms =
          src->replies > 0
              ? static_cast<double>(src->rtt_sum) / src->replies / 1000.0
              : 0.0;
      const double configured_ms =
          static_cast<double>(topo.RttMicros(a, b)) / 1000.0;
      std::printf("  %5.0f/%4.0f", measured_ms, configured_ms);
    }
    std::printf("\n");
  }
  std::printf("(cells: measured / configured; paper Table 1 values are the "
              "configured ones)\n");
  return 0;
}
