// Figure 7: network bandwidth used at a target throughput of 5,000 tps on
// the local cluster (§6.4.2), broken down into send/receive rates of
// clients, leaders (or TAPIR servers), and followers.
//
// Paper result: TAPIR clients use the most client bandwidth (the client
// coordinates and talks to every replica); Carousel servers — especially
// leaders — use more bandwidth than TAPIR servers because they replicate
// both 2PC state and data through their consensus groups; Carousel Fast
// uses more than Basic since the fast path and slow path run concurrently.
// All numbers stay well below network saturation (< 70 Mbps per node).

#include <cstdio>
#include <map>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 5000;
  dopts.duration = (FastMode() ? 10 : 20) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 2 : 5) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 2 : 5) * kMicrosPerSecond;

  std::printf("== Figure 7: average bandwidth (Mbps) at 5000 tps, local "
              "cluster, Retwis ==\n\n");
  std::printf("%-16s %8s | %18s | %24s | %20s\n", "", "", "client",
              "leader/TAPIR server", "follower");
  std::printf("%-16s %8s | %8s %9s | %11s %12s | %9s %10s\n", "system",
              "commit", "send", "recv", "send", "recv", "send", "recv");

  struct RoleBw {
    double send_mbps = 0;
    double recv_mbps = 0;
    int nodes = 0;
  };

  for (SystemKind kind : {SystemKind::kTapir, SystemKind::kCarouselBasic,
                          SystemKind::kCarouselFast}) {
    auto generator = workload::MakeRetwisGenerator(wopts);
    BenchRun run = RunSystem(kind, LocalClusterTopology(120), generator.get(),
                             dopts, ThroughputCostModel(), /*seed=*/55);
    std::map<std::string, RoleBw> by_role;
    for (size_t i = 0; i < run.traffic.size(); ++i) {
      RoleBw& bw = by_role[run.roles[i]];
      bw.send_mbps += static_cast<double>(run.traffic[i].bytes_sent) * 8 /
                      run.window_seconds / 1e6;
      bw.recv_mbps += static_cast<double>(run.traffic[i].bytes_received) * 8 /
                      run.window_seconds / 1e6;
      bw.nodes++;
    }
    for (auto& [role, bw] : by_role) {
      if (bw.nodes > 0) {
        bw.send_mbps /= bw.nodes;
        bw.recv_mbps /= bw.nodes;
      }
    }
    const RoleBw client = by_role["client"];
    const RoleBw leader =
        by_role.count("leader") > 0 ? by_role["leader"] : by_role["server"];
    const RoleBw follower = by_role["follower"];  // Empty for TAPIR.
    std::printf("%-16s %7.0f  | %8.2f %9.2f | %11.2f %12.2f | %9.2f %10.2f\n",
                SystemName(kind), run.result.CommittedTps(), client.send_mbps,
                client.recv_mbps, leader.send_mbps, leader.recv_mbps,
                follower.send_mbps, follower.recv_mbps);
  }

  std::printf("\n(per-node averages over the measurement window. Paper "
              "claims reproduced: TAPIR clients outspend Carousel clients; "
              "Carousel servers - especially leaders, which replicate both "
              "2PC state and data - outspend TAPIR servers; Fast > Basic. "
              "All rates stay well below the 1 Gbps links.)\n");
  return 0;
}
