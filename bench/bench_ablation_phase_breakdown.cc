// Ablation A4: where does transaction time go? Figure 2 of the paper
// shows the Read and Commit phases running sequentially while the Prepare
// phase overlaps both. This bench reports the phase latencies for
// read-write Retwis transactions on the EC2 topology, measured from the
// per-transaction trace records that the client, coordinator, and
// participants stamp as each transaction moves through the protocol:
//
//   read phase    = kExecuteStart -> kExecuteDone   (client-visible)
//   commit phase  = kCommitStart -> kDecided        (client-visible)
//   prepare fast  = kPrepareSent -> kFastQuorum     (CPC fast path)
//   prepare slow  = kPrepareSent -> kSlowDecision   (replicated slow path)
//
// The commit phase is where any *residual* Prepare latency surfaces: when
// the slow path outlives Read+Commit, the coordinator must wait. Carousel
// Fast's CPC shortens exactly that residue; local reads shorten the read
// phase of transactions whose partitions have local replicas. The
// fast-path column shows how often CPC actually decided via supermajority
// rather than falling back to the leader's replicated decision.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (FastMode() ? 20 : 45) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 4 : 10) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 4 : 10) * kMicrosPerSecond;

  struct Config {
    const char* name;
    bool fast_path;
    bool local_reads;
  };
  const Config configs[] = {
      {"Carousel Basic", false, false},
      {"Carousel Fast", true, true},
  };

  JsonReporter json("ablation_phase_breakdown");

  std::printf("== Ablation: phase latency breakdown (EC2, Retwis "
              "read-write txns, 200 tps) ==\n\n");
  std::printf("%-16s %17s %17s %19s %9s\n", "", "read phase", "commit phase",
              "prepare (overlap)", "");
  std::printf("%-16s %8s %8s %8s %8s %9s %9s %9s\n", "system", "p50(ms)",
              "p95(ms)", "p50(ms)", "p95(ms)", "fast p50", "slow p50",
              "fast path");

  for (const Config& config : configs) {
    core::CarouselOptions options;
    options.fast_path = config.fast_path;
    options.local_reads = config.local_reads;
    options.metrics.enabled = true;
    core::Cluster cluster(Ec2Topology(20), options, sim::NetworkOptions{},
                          6000);
    cluster.Start();
    auto adapter = workload::MakeCarouselAdapter(&cluster, config.name);
    auto generator = workload::MakeRetwisGenerator(wopts);
    workload::DriverOptions seeded = dopts;
    seeded.seed = 6000;
    workload::RunWorkload(adapter.get(), generator.get(), seeded);

    // Everything below comes from the recorded traces, not from any
    // client-side bookkeeping: the stats fold over sealed TxnTrace
    // records.
    const TraceStats& stats = cluster.traces().stats();
    std::printf("%-16s %8.0f %8.0f %8.0f %8.0f %8.0f %9.0f %8.1f%%\n",
                config.name, stats.read_phase.Quantile(0.5) / 1000.0,
                stats.read_phase.Quantile(0.95) / 1000.0,
                stats.commit_phase.Quantile(0.5) / 1000.0,
                stats.commit_phase.Quantile(0.95) / 1000.0,
                stats.prepare_fast.Quantile(0.5) / 1000.0,
                stats.prepare_slow.Quantile(0.5) / 1000.0,
                100.0 * stats.FastPathFraction());

    json.Latencies(config.name, "read_phase", stats.read_phase);
    json.Latencies(config.name, "commit_phase", stats.commit_phase);
    json.Latencies(config.name, "total", stats.total);
    json.Metric(config.name, "prepare_fast_p50_ms",
                stats.prepare_fast.Quantile(0.5) / 1000.0);
    json.Metric(config.name, "prepare_slow_p50_ms",
                stats.prepare_slow.Quantile(0.5) / 1000.0);
    json.Metric(config.name, "fast_path_fraction", stats.FastPathFraction());
    json.Metric(config.name, "committed", static_cast<double>(stats.committed));
    json.Metric(config.name, "aborted", static_cast<double>(stats.aborted));
    json.Wanrt(config.name, cluster.wanrt().stats());
  }
  std::printf("\nreading: local reads collapse the read phase when replicas "
              "are local; CPC trims the commit phase by removing the slow "
              "path's replication leg from the critical path\n");
  return 0;
}
