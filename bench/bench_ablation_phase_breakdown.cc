// Ablation A4: where does transaction time go? Figure 2 of the paper
// shows the Read and Commit phases running sequentially while the Prepare
// phase overlaps both. This bench reports the client-visible phase
// latencies for read-write Retwis transactions on the EC2 topology:
//
//   read phase    = ReadAndPrepare -> read results
//   commit phase  = Commit -> committed/aborted
//   total         = read + commit (think time is zero in the driver)
//
// The commit phase is where any *residual* Prepare latency surfaces: when
// the slow path outlives Read+Commit, the coordinator must wait. Carousel
// Fast's CPC shortens exactly that residue; local reads shorten the read
// phase of transactions whose partitions have local replicas.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (FastMode() ? 20 : 45) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 4 : 10) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 4 : 10) * kMicrosPerSecond;

  struct Config {
    const char* name;
    bool fast_path;
    bool local_reads;
  };
  const Config configs[] = {
      {"Carousel Basic", false, false},
      {"Carousel Fast", true, true},
  };

  std::printf("== Ablation: phase latency breakdown (EC2, Retwis "
              "read-write txns, 200 tps) ==\n\n");
  std::printf("%-16s %17s %17s\n", "", "read phase", "commit phase");
  std::printf("%-16s %8s %8s %8s %8s\n", "system", "p50(ms)", "p95(ms)",
              "p50(ms)", "p95(ms)");

  for (const Config& config : configs) {
    core::CarouselOptions options;
    options.fast_path = config.fast_path;
    options.local_reads = config.local_reads;
    core::Cluster cluster(Ec2Topology(20), options, sim::NetworkOptions{},
                          6000);
    cluster.Start();
    auto adapter = workload::MakeCarouselAdapter(&cluster, config.name);
    auto generator = workload::MakeRetwisGenerator(wopts);
    workload::DriverOptions seeded = dopts;
    seeded.seed = 6000;
    workload::RunWorkload(adapter.get(), generator.get(), seeded);

    Histogram read_phase, commit_phase;
    for (core::CarouselClient* client : cluster.clients()) {
      read_phase.Merge(client->read_phase_latency());
      commit_phase.Merge(client->commit_phase_latency());
    }
    std::printf("%-16s %8.0f %8.0f %8.0f %8.0f\n", config.name,
                read_phase.Quantile(0.5) / 1000.0,
                read_phase.Quantile(0.95) / 1000.0,
                commit_phase.Quantile(0.5) / 1000.0,
                commit_phase.Quantile(0.95) / 1000.0);
  }
  std::printf("\nreading: local reads collapse the read phase when replicas "
              "are local; CPC trims the commit phase by removing the slow "
              "path's replication leg from the critical path\n");
  return 0;
}
