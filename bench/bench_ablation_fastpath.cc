// Ablation A1: which of Carousel Fast's two ingredients buys the latency —
// the CPC fast path or reading from local replicas?
//
// Runs the Figure-4 setup (EC2 topology, Retwis, 200 tps) in four
// configurations: Basic, Basic+CPC (fast path but leader-only reads),
// Basic+local-reads... local reads without CPC are not defined in the
// paper (the follower prepare replies are what validate them cheaply), so
// the grid is: Basic, CPC only, CPC+local reads (= Carousel Fast).

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace carousel;
  using namespace carousel::bench;

  workload::WorkloadOptions wopts;
  wopts.num_keys = FastMode() ? 1'000'000 : 10'000'000;
  workload::DriverOptions dopts;
  dopts.target_tps = 200;
  dopts.duration = (FastMode() ? 20 : 45) * kMicrosPerSecond;
  dopts.warmup = (FastMode() ? 4 : 10) * kMicrosPerSecond;
  dopts.cooldown = (FastMode() ? 4 : 10) * kMicrosPerSecond;

  struct Config {
    const char* name;
    bool fast_path;
    bool local_reads;
  };
  const Config configs[] = {
      {"Basic (no CPC)", false, false},
      {"CPC only", true, false},
      {"CPC + local reads", true, true},
  };

  JsonReporter json("ablation_fastpath");
  std::printf("== Ablation: CPC fast path vs local-replica reads "
              "(EC2, Retwis, 200 tps) ==\n\n");
  std::printf("%-20s %9s %9s %9s %8s\n", "configuration", "p50(ms)",
              "p90(ms)", "p99(ms)", "abort%");

  for (const Config& config : configs) {
    Histogram latency;
    double abort_rate = 0;
    double fast_fraction = 0;
    obs::WanrtStats wanrt;
    for (int rep = 0; rep < Repeats(); ++rep) {
      core::CarouselOptions options;
      options.fast_path = config.fast_path;
      options.local_reads = config.local_reads;
      options.metrics.enabled = true;
      core::Cluster cluster(Ec2Topology(20), options, sim::NetworkOptions{},
                            3000 + rep);
      cluster.Start();
      auto adapter = workload::MakeCarouselAdapter(&cluster, config.name);
      auto generator = workload::MakeRetwisGenerator(wopts);
      workload::DriverOptions seeded = dopts;
      seeded.seed = 3000 + rep;
      const workload::RunResult result =
          workload::RunWorkload(adapter.get(), generator.get(), seeded);
      latency.Merge(result.latency);
      abort_rate += result.AbortRate() / Repeats();
      fast_fraction += cluster.traces().stats().FastPathFraction() / Repeats();
      // The WANRT block reports the first rep's ledger: hop counts are a
      // protocol property, identical in distribution across reps.
      if (rep == 0) wanrt = cluster.wanrt().stats();
    }
    std::printf("%-20s %9.0f %9.0f %9.0f %7.2f%%\n", config.name,
                latency.Quantile(0.5) / 1000.0, latency.Quantile(0.9) / 1000.0,
                latency.Quantile(0.99) / 1000.0, 100 * abort_rate);
    json.Latencies(config.name, "latency", latency);
    json.Metric(config.name, "p90_ms", latency.Quantile(0.9) / 1000.0);
    json.Metric(config.name, "abort_rate", abort_rate);
    json.Metric(config.name, "fast_path_fraction", fast_fraction);
    json.Wanrt(config.name, wanrt);
  }
  std::printf("\nexpected: each ingredient lowers the distribution; local "
              "reads matter most for clients whose participant leaders are "
              "all remote\n");
  return 0;
}
