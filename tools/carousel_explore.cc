// carousel_explore — systematic interleaving exploration of the commit
// protocol.
//
// Runs the real protocol stack on the sim backend under controlled
// scheduling and enumerates message-delivery orderings (plus optional
// crash points at prepare/decision persistence boundaries) via bounded DFS
// with a sleep-set partial-order reduction. Every terminal state is
// certified by the DSG serializability checker; a violating schedule is
// dumped as a replayable JSON trace.
//
// Examples:
//   carousel_explore --txns=2 --max-depth=40            # canonical sweep
//   carousel_explore --inject-bug=fast-path --report-dir=out  # self-test
//   carousel_explore --replay=out/violation-1.json      # step-for-step replay
//
// Flags:
//   --explore            run an exploration (the default mode)
//   --replay=PATH        re-execute a dumped trace instead of exploring
//   --txns=N             concurrent conflicting transactions (default 2)
//   --keys=N             keys in the conflict set (default 2)
//   --dcs=N              datacenters (default 3)
//   --partitions=N       partitions (default 1)
//   --clients-per-dc=N   clients per DC (default 1)
//   --seed=N             deployment seed (default 1)
//   --max-depth=N        branch points that may diverge (default 40)
//   --branch-bound=N     alternatives explored per branch point (0 = all)
//   --max-schedules=N    stop after N distinct schedules (0 = exhaust)
//   --max-steps=N        controlled steps per run before truncation
//   --iterative-step=N   iterative-deepening window (0 = single DFS)
//   --delay-bound=N      CHESS-style bound: at most N branch points per
//                        schedule deviate from the default order, at any
//                        position in the run (supersedes --max-depth)
//   --sequential         chain txns (i+1 issued from i's completion) so
//                        conflicts come from replication lag, not
//                        concurrency — the stale-local-read regime
//   --crash-points=N     max crashes injected per schedule (default 0)
//   --no-sleep-sets      disable the partial-order reduction
//   --no-stop-on-violation   keep exploring after the first violation
//   --local-reads        enable local-replica reads (default off)
//   --no-fast-path       disable the CPC fast path (default on)
//   --inject-bug=fast-path|stale-read   enable a flag-gated protocol bug
//   --report-dir=PATH    write violating traces to PATH/violation-<n>.json
//                        (directory must exist; CI uploads it)
//
// Exit status: 0 when every schedule certified clean (or a replay
// reproduced its recorded verdict), 1 on a violation / replay divergence,
// 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/explore.h"

namespace {

bool ParseU64(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

int Replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace: %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  carousel::check::ScheduleTrace trace;
  std::string error;
  if (!carousel::check::ScheduleTrace::FromJson(buf.str(), &trace, &error)) {
    std::fprintf(stderr, "bad trace %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  std::printf("replaying %s (%zu steps%s%s)\n", path.c_str(),
              trace.steps.size(), trace.violation.empty() ? "" : ", expects ",
              trace.violation.c_str());
  carousel::check::RunOutcome out =
      carousel::check::ReplayTrace(trace, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "replay DIVERGED: %s\n", error.c_str());
    return 1;
  }
  if (trace.violation.empty()) {
    std::printf("replay: %s\n", out.ok() ? "clean (as recorded)"
                                         : out.violation.c_str());
    return out.ok() ? 0 : 1;
  }
  if (!out.ok()) {
    std::printf("replay reproduced the violation: %s\n%s",
                out.violation.c_str(), out.check.Report(out.history).c_str());
    return 1;
  }
  std::fprintf(stderr,
               "replay did NOT reproduce the recorded violation (%s)\n",
               trace.violation.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  carousel::check::ExploreConfig config;
  std::string replay_path;
  std::string report_dir;
  std::string bug;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strcmp(arg, "--explore") == 0) continue;
    if (std::strncmp(arg, "--replay=", 9) == 0) {
      replay_path = arg + 9;
      continue;
    }
    if (ParseU64(arg, "--txns", &value)) { config.txns = (int)value; continue; }
    if (ParseU64(arg, "--keys", &value)) { config.keys = (int)value; continue; }
    if (ParseU64(arg, "--dcs", &value)) { config.num_dcs = (int)value; continue; }
    if (ParseU64(arg, "--partitions", &value)) {
      config.partitions = (int)value;
      continue;
    }
    if (ParseU64(arg, "--clients-per-dc", &value)) {
      config.clients_per_dc = (int)value;
      continue;
    }
    if (ParseU64(arg, "--seed", &config.seed)) continue;
    if (ParseU64(arg, "--max-depth", &value)) {
      config.max_depth = (int)value;
      continue;
    }
    if (ParseU64(arg, "--branch-bound", &value)) {
      config.branch_bound = (int)value;
      continue;
    }
    if (ParseU64(arg, "--max-schedules", &config.max_schedules)) continue;
    if (ParseU64(arg, "--max-steps", &value)) {
      config.max_steps = (int)value;
      continue;
    }
    if (ParseU64(arg, "--iterative-step", &value)) {
      config.iterative_step = (int)value;
      continue;
    }
    if (ParseU64(arg, "--delay-bound", &value)) {
      config.delay_bound = (int)value;
      continue;
    }
    if (ParseU64(arg, "--crash-points", &value)) {
      config.max_crashes = (int)value;
      continue;
    }
    if (std::strcmp(arg, "--no-sleep-sets") == 0) {
      config.sleep_sets = false;
      continue;
    }
    if (std::strcmp(arg, "--no-stop-on-violation") == 0) {
      config.stop_on_violation = false;
      continue;
    }
    if (std::strcmp(arg, "--sequential") == 0) {
      config.sequential = true;
      continue;
    }
    if (std::strcmp(arg, "--local-reads") == 0) {
      config.local_reads = true;
      continue;
    }
    if (std::strcmp(arg, "--no-fast-path") == 0) {
      config.fast_path = false;
      continue;
    }
    if (std::strncmp(arg, "--inject-bug=", 13) == 0) {
      bug = arg + 13;
      continue;
    }
    if (std::strncmp(arg, "--report-dir=", 13) == 0) {
      report_dir = arg + 13;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s (see header comment)\n", arg);
    return 2;
  }
  if (!bug.empty() && bug != "fast-path" && bug != "stale-read") {
    std::fprintf(stderr, "--inject-bug must be fast-path or stale-read\n");
    return 2;
  }
  config.inject_bug_fast_path = bug == "fast-path";
  config.inject_bug_stale_read = bug == "stale-read";

  if (!replay_path.empty()) return Replay(replay_path);

  carousel::check::ExploreResult result = carousel::check::Explore(config);
  std::printf("%s\n", result.Summary().c_str());
  if (!result.violation_found) return 0;

  std::printf("%s", result.violation_report.c_str());
  const std::string trace_json = result.violation_trace.ToJson();
  if (!report_dir.empty()) {
    // The directory must exist (CI creates it); a write failure only
    // costs the artifact, never the exit status.
    const std::string path = report_dir + "/violation-1.json";
    std::ofstream out(path);
    if (out) {
      out << trace_json;
      std::printf("trace written to %s (replay with --replay=%s)\n",
                  path.c_str(), path.c_str());
    }
  } else {
    std::printf("violating trace (replay with --replay=<file>):\n%s",
                trace_json.c_str());
  }
  return 1;
}
