// carousel_chaos — seed-sweeping chaos harness.
//
// Each seed deterministically samples a deployment (topology, replication,
// latency, loss), a workload mix, and a nemesis schedule (leader crashes,
// client crashes, DC partitions that heal mid-run), runs the full Carousel
// stack under it, and certifies the resulting history with the
// direct-serialization-graph checker. A violation prints the seed, the
// nemesis schedule and a minimized offending history — replay it with
// --seed=<N> and the same flags.
//
// Examples:
//   carousel_chaos --seeds=500                    # CI sweep
//   carousel_chaos --seed=1234 --verbose          # replay one seed
//   carousel_chaos --seeds=50 --inject-bug=fast-path   # checker self-test
//
// Flags:
//   --seeds=N            sweep seeds seed-base .. seed-base+N-1 (default 20)
//   --seed=N             run exactly one seed (full report)
//   --seed-base=N        first seed of a sweep (default 1)
//   --txns=N             transaction invocations per seed (default 120)
//   --inject-bug=fast-path|stale-read   enable a flag-gated protocol bug
//   --batching           run with egress batching + delivery coalescing on
//   --verbose            print a summary line for every seed, not only fails
//   --report-dir=PATH    also write each failing seed's full report to
//                        PATH/seed-<N>.txt (for CI artifact upload)
//
// Exit status: 0 when every seed checked clean, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/chaos.h"

namespace {

bool ParseU64(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 20;
  uint64_t seed_base = 1;
  uint64_t single_seed = 0;
  bool have_single_seed = false;
  uint64_t txns = 120;
  std::string bug;
  std::string report_dir;
  bool verbose = false;
  bool batching = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (ParseU64(arg, "--seeds", &seeds)) continue;
    if (ParseU64(arg, "--seed-base", &seed_base)) continue;
    if (ParseU64(arg, "--seed", &value)) {
      single_seed = value;
      have_single_seed = true;
      continue;
    }
    if (ParseU64(arg, "--txns", &txns)) continue;
    if (std::strncmp(arg, "--inject-bug=", 13) == 0) {
      bug = arg + 13;
      continue;
    }
    if (std::strncmp(arg, "--report-dir=", 13) == 0) {
      report_dir = arg + 13;
      continue;
    }
    if (std::strcmp(arg, "--batching") == 0) {
      batching = true;
      continue;
    }
    if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s (see header comment)\n", arg);
    return 2;
  }
  if (!bug.empty() && bug != "fast-path" && bug != "stale-read") {
    std::fprintf(stderr, "--inject-bug must be fast-path or stale-read\n");
    return 2;
  }

  const uint64_t first = have_single_seed ? single_seed : seed_base;
  const uint64_t count = have_single_seed ? 1 : seeds;
  uint64_t failures = 0;
  for (uint64_t i = 0; i < count; ++i) {
    carousel::check::ChaosConfig config;
    config.seed = first + i;
    config.txns = static_cast<int>(txns);
    config.inject_bug_fast_path = bug == "fast-path";
    config.inject_bug_stale_read = bug == "stale-read";
    config.batching = batching;
    carousel::check::ChaosResult result =
        carousel::check::RunChaosSeed(config);
    if (result.ok()) {
      if (verbose || have_single_seed) {
        std::printf("%s\n", result.Summary().c_str());
      }
      continue;
    }
    failures++;
    const std::string replay =
        "replay: carousel_chaos --seed=" + std::to_string(config.seed) +
        " --txns=" + std::to_string(txns) +
        (batching ? " --batching" : "") +
        (bug.empty() ? "" : " --inject-bug=" + bug) + "\n";
    std::printf("%s%s", result.Report().c_str(), replay.c_str());
    if (!report_dir.empty()) {
      // The directory must exist (CI creates it); a write failure only
      // costs the artifact, never the exit status.
      std::ofstream out(report_dir + "/seed-" + std::to_string(config.seed) +
                        ".txt");
      if (out) out << result.Report() << replay;
      // The observability snapshot rides along as its own artifact:
      // inspect / compare it with `carousel_metrics dump|diff`.
      std::ofstream metrics(report_dir + "/seed-" +
                            std::to_string(config.seed) + "-metrics.json");
      if (metrics) metrics << result.metrics_json << "\n";
    }
  }
  std::printf("chaos: %llu/%llu seed(s) failed (seeds %llu..%llu, txns=%llu%s%s)\n",
              (unsigned long long)failures, (unsigned long long)count,
              (unsigned long long)first,
              (unsigned long long)(first + count - 1),
              (unsigned long long)txns,
              bug.empty() ? "" : ", bug=", bug.c_str());
  return failures == 0 ? 0 : 1;
}
