// carousel_rt_chaos — seed-sweeping chaos harness for the threaded
// (real-time) backend.
//
// Each seed samples a deployment, a workload mix, and a timed fault
// schedule (SIGKILL-style node kill + WAL restart, DC partitions,
// per-link delay/drop), runs the full Carousel stack on real threads —
// optionally over localhost TCP — under it, and certifies the resulting
// history with the direct-serialization-graph checker. Unlike
// carousel_chaos, a seed pins only the *schedule*: thread interleavings
// stay real, so re-running a seed explores new executions of the same
// scenario. A failing seed keeps its WAL directory as an artifact.
//
// Examples:
//   carousel_rt_chaos --seeds=50                  # CI sweep (inproc)
//   carousel_rt_chaos --seeds=20 --transport=tcp  # sockets + wire codec
//   carousel_rt_chaos --seed=1234 --verbose       # replay one schedule
//
// Flags:
//   --seeds=N            sweep seeds seed-base .. seed-base+N-1 (default 10)
//   --seed=N             run exactly one seed (full report)
//   --seed-base=N        first seed of a sweep (default 1)
//   --txns=N             transaction invocation target per seed (default 150)
//   --transport=inproc|tcp   inter-node message substrate (default inproc)
//   --storage-root=PATH  root for per-seed WAL dirs
//                        (default /tmp/carousel-rt-chaos)
//   --keep-storage       keep WAL dirs even for passing seeds
//   --verbose            print a summary line for every seed, not only fails
//   --report-dir=PATH    also write each failing seed's full report to
//                        PATH/rt-seed-<N>.txt (for CI artifact upload)
//
// Exit status: 0 when every seed checked clean (transport-unavailable
// seeds count as skips), 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/chaos_rt.h"

namespace {

bool ParseU64(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 10;
  uint64_t seed_base = 1;
  uint64_t single_seed = 0;
  bool have_single_seed = false;
  uint64_t txns = 150;
  std::string transport = "inproc";
  std::string storage_root = "/tmp/carousel-rt-chaos";
  std::string report_dir;
  bool keep_storage = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (ParseU64(arg, "--seeds", &seeds)) continue;
    if (ParseU64(arg, "--seed-base", &seed_base)) continue;
    if (ParseU64(arg, "--seed", &value)) {
      single_seed = value;
      have_single_seed = true;
      continue;
    }
    if (ParseU64(arg, "--txns", &txns)) continue;
    if (std::strncmp(arg, "--transport=", 12) == 0) {
      transport = arg + 12;
      continue;
    }
    if (std::strncmp(arg, "--storage-root=", 15) == 0) {
      storage_root = arg + 15;
      continue;
    }
    if (std::strncmp(arg, "--report-dir=", 13) == 0) {
      report_dir = arg + 13;
      continue;
    }
    if (std::strcmp(arg, "--keep-storage") == 0) {
      keep_storage = true;
      continue;
    }
    if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s (see header comment)\n", arg);
    return 2;
  }
  if (transport != "inproc" && transport != "tcp") {
    std::fprintf(stderr, "--transport must be inproc or tcp\n");
    return 2;
  }

  const uint64_t first = have_single_seed ? single_seed : seed_base;
  const uint64_t count = have_single_seed ? 1 : seeds;
  uint64_t failures = 0;
  uint64_t skips = 0;
  for (uint64_t i = 0; i < count; ++i) {
    carousel::check::RtChaosConfig config;
    config.seed = first + i;
    config.txns = static_cast<int>(txns);
    config.use_tcp = transport == "tcp";
    config.storage_root = storage_root;
    config.keep_storage = keep_storage;
    carousel::check::RtChaosResult result =
        carousel::check::RunRtChaosSeed(config);
    if (result.start_failed) {
      // Sockets unavailable (sandbox); not a protocol verdict. Skipping
      // the whole remaining sweep: the transport will not come back.
      std::printf("%s\n", result.Summary().c_str());
      skips += count - i;
      break;
    }
    if (result.ok()) {
      if (verbose || have_single_seed) {
        std::printf("%s\n", result.Summary().c_str());
      }
      continue;
    }
    failures++;
    const std::string replay =
        "replay: carousel_rt_chaos --seed=" + std::to_string(config.seed) +
        " --txns=" + std::to_string(txns) + " --transport=" + transport +
        " --storage-root=" + storage_root + "\n";
    std::printf("%s%s", result.Report().c_str(), replay.c_str());
    if (!report_dir.empty()) {
      // The directory must exist (CI creates it); a write failure only
      // costs the artifact, never the exit status. The seed's WAL dir is
      // kept on disk too (see Report for the path).
      std::ofstream out(report_dir + "/rt-seed-" +
                        std::to_string(config.seed) + ".txt");
      if (out) out << result.Report() << replay;
    }
  }
  std::printf(
      "rt-chaos: %llu/%llu seed(s) failed, %llu skipped "
      "(seeds %llu..%llu, txns=%llu, transport=%s)\n",
      (unsigned long long)failures, (unsigned long long)count,
      (unsigned long long)skips, (unsigned long long)first,
      (unsigned long long)(first + count - 1), (unsigned long long)txns,
      transport.c_str());
  return failures == 0 ? 0 : 1;
}
