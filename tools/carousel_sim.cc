// carousel_sim — command-line experiment driver.
//
// Runs any of the three systems (carousel-basic, carousel-fast, tapir) on
// a configurable simulated deployment and workload, and prints the
// measurement-window results. Examples:
//
//   carousel_sim --system=carousel-fast --topology=ec2 --workload=retwis \
//                --tps=200 --duration=30
//   carousel_sim --system=tapir --topology=uniform:5:5 --tps=6000 \
//                --clients-per-dc=120 --cpu-model --cdf
//   carousel_sim --system=carousel-basic --loss=0.02 --crash=3:5 --seed=9
//
// Flags:
//   --system=carousel-basic|carousel-fast|tapir   (default carousel-fast)
//   --topology=ec2|uniform:<dcs>:<rtt_ms>         (default ec2)
//   --partitions=N        (default 5)   --replication=N (default 3)
//   --clients-per-dc=N    (default 20)
//   --workload=retwis|ycsbt (default retwis)  --keys=N (default 10000000)
//   --zipf=F              (default 0.75)
//   --tps=F               (default 200) --duration=S (default 30)
//   --warmup=S --cooldown=S (default duration/6 each)
//   --cpu-model           enable the calibrated server CPU/queueing model
//   --loss=F              message loss fraction
//   --crash=NODE:SECONDS  crash node id NODE at time SECONDS (repeatable)
//   --seed=N              (default 1)
//   --cdf                 print the latency CDF
//   --bandwidth           print per-role bandwidth

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace carousel;
using namespace carousel::bench;

struct Args {
  std::string system = "carousel-fast";
  std::string topology = "ec2";
  int partitions = 5;
  int replication = 3;
  int clients_per_dc = 20;
  std::string workload = "retwis";
  uint64_t keys = 10'000'000;
  double zipf = 0.75;
  double tps = 200;
  double duration_s = 30;
  double warmup_s = -1;
  double cooldown_s = -1;
  bool cpu_model = false;
  double loss = 0.0;
  std::vector<std::pair<NodeId, double>> crashes;
  uint64_t seed = 1;
  bool cdf = false;
  bool bandwidth = false;
};

bool ParseArg(const std::string& arg, Args* out) {
  auto value_of = [&](const char* name) -> const char* {
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
    return nullptr;
  };
  if (const char* v = value_of("--system")) {
    out->system = v;
  } else if (const char* v = value_of("--topology")) {
    out->topology = v;
  } else if (const char* v = value_of("--partitions")) {
    out->partitions = std::atoi(v);
  } else if (const char* v = value_of("--replication")) {
    out->replication = std::atoi(v);
  } else if (const char* v = value_of("--clients-per-dc")) {
    out->clients_per_dc = std::atoi(v);
  } else if (const char* v = value_of("--workload")) {
    out->workload = v;
  } else if (const char* v = value_of("--keys")) {
    out->keys = std::strtoull(v, nullptr, 10);
  } else if (const char* v = value_of("--zipf")) {
    out->zipf = std::atof(v);
  } else if (const char* v = value_of("--tps")) {
    out->tps = std::atof(v);
  } else if (const char* v = value_of("--duration")) {
    out->duration_s = std::atof(v);
  } else if (const char* v = value_of("--warmup")) {
    out->warmup_s = std::atof(v);
  } else if (const char* v = value_of("--cooldown")) {
    out->cooldown_s = std::atof(v);
  } else if (arg == "--cpu-model") {
    out->cpu_model = true;
  } else if (const char* v = value_of("--loss")) {
    out->loss = std::atof(v);
  } else if (const char* v = value_of("--crash")) {
    const char* colon = std::strchr(v, ':');
    if (colon == nullptr) return false;
    out->crashes.emplace_back(std::atoi(v), std::atof(colon + 1));
  } else if (const char* v = value_of("--seed")) {
    out->seed = std::strtoull(v, nullptr, 10);
  } else if (arg == "--cdf") {
    out->cdf = true;
  } else if (arg == "--bandwidth") {
    out->bandwidth = true;
  } else {
    return false;
  }
  return true;
}

Topology BuildTopology(const Args& args) {
  Topology topo = [&]() {
    if (args.topology == "ec2") return Topology::PaperEc2();
    // uniform:<dcs>:<rtt>
    int dcs = 5;
    double rtt = 5.0;
    if (std::sscanf(args.topology.c_str(), "uniform:%d:%lf", &dcs, &rtt) < 1) {
      std::fprintf(stderr, "bad --topology '%s'\n", args.topology.c_str());
      std::exit(2);
    }
    return Topology::Uniform(dcs, rtt);
  }();
  topo.PlacePartitions(args.partitions, args.replication);
  for (DcId dc = 0; dc < topo.num_dcs(); ++dc) {
    for (int i = 0; i < args.clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], &args)) {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", argv[i]);
      return 2;
    }
  }
  if (args.warmup_s < 0) args.warmup_s = args.duration_s / 6;
  if (args.cooldown_s < 0) args.cooldown_s = args.duration_s / 6;

  SystemKind kind;
  if (args.system == "carousel-basic") {
    kind = SystemKind::kCarouselBasic;
  } else if (args.system == "carousel-fast") {
    kind = SystemKind::kCarouselFast;
  } else if (args.system == "tapir") {
    kind = SystemKind::kTapir;
  } else {
    std::fprintf(stderr, "unknown --system '%s'\n", args.system.c_str());
    return 2;
  }

  workload::WorkloadOptions wopts;
  wopts.num_keys = args.keys;
  wopts.zipf_theta = args.zipf;
  auto generator = args.workload == "ycsbt"
                       ? workload::MakeYcsbTGenerator(wopts)
                       : workload::MakeRetwisGenerator(wopts);

  workload::DriverOptions dopts;
  dopts.target_tps = args.tps;
  dopts.duration = static_cast<SimTime>(args.duration_s * kMicrosPerSecond);
  dopts.warmup = static_cast<SimTime>(args.warmup_s * kMicrosPerSecond);
  dopts.cooldown = static_cast<SimTime>(args.cooldown_s * kMicrosPerSecond);
  dopts.seed = args.seed;

  Topology topo = BuildTopology(args);
  std::printf("system=%s topology=%s partitions=%d x%d clients=%d/DC "
              "workload=%s tps=%.0f duration=%.0fs seed=%llu\n",
              SystemName(kind), args.topology.c_str(), args.partitions,
              args.replication, args.clients_per_dc, args.workload.c_str(),
              args.tps, args.duration_s,
              static_cast<unsigned long long>(args.seed));

  // Crash/loss knobs require driving the cluster directly; reuse
  // RunSystem for the common path.
  core::ServerCostModel cost =
      args.cpu_model ? ThroughputCostModel() : core::ServerCostModel{};

  BenchRun run;
  if (args.loss > 0 || !args.crashes.empty()) {
    if (kind == SystemKind::kTapir) {
      std::fprintf(stderr,
                   "--loss/--crash currently supported for Carousel only\n");
      return 2;
    }
    core::CarouselOptions options;
    options.cost = cost;
    options.fast_path = kind == SystemKind::kCarouselFast;
    options.local_reads = options.fast_path;
    sim::NetworkOptions net;
    net.loss_fraction = args.loss;
    core::Cluster cluster(std::move(topo), options, net, args.seed);
    cluster.Start();
    for (const auto& [node, at_s] : args.crashes) {
      cluster.sim().ScheduleAt(
          static_cast<SimTime>(at_s * kMicrosPerSecond),
          [&cluster, node = node]() { cluster.Crash(node); });
    }
    auto adapter = workload::MakeCarouselAdapter(&cluster, SystemName(kind));
    run.result = workload::RunWorkload(adapter.get(), generator.get(), dopts);
  } else {
    run = RunSystem(kind, std::move(topo), generator.get(), dopts, cost,
                    args.seed);
  }

  const workload::RunResult& r = run.result;
  std::printf("\ncommitted %llu (%.0f tps), aborted %llu (%.2f%%), "
              "timed out %llu, dropped arrivals %llu\n",
              static_cast<unsigned long long>(r.committed), r.CommittedTps(),
              static_cast<unsigned long long>(r.aborted), 100 * r.AbortRate(),
              static_cast<unsigned long long>(r.timed_out),
              static_cast<unsigned long long>(r.dropped));
  std::printf("latency: %s\n", r.latency.Summary().c_str());

  if (args.cdf) PrintCdf(SystemName(kind), r.latency);
  if (args.bandwidth && !run.traffic.empty()) {
    std::printf("\nper-role bandwidth (Mbps, averaged per node):\n");
    std::map<std::string, std::pair<double, int>> send_by_role;
    std::map<std::string, double> recv_by_role;
    for (size_t i = 0; i < run.traffic.size(); ++i) {
      auto& [send, count] = send_by_role[run.roles[i]];
      send += static_cast<double>(run.traffic[i].bytes_sent) * 8 /
              run.window_seconds / 1e6;
      recv_by_role[run.roles[i]] +=
          static_cast<double>(run.traffic[i].bytes_received) * 8 /
          run.window_seconds / 1e6;
      count++;
    }
    for (auto& [role, sc] : send_by_role) {
      std::printf("  %-9s send %7.2f  recv %7.2f\n", role.c_str(),
                  sc.first / sc.second, recv_by_role[role] / sc.second);
    }
  }
  return 0;
}
