// carousel_rt — real-time experiment driver on the threaded runtime.
//
// Boots a full Carousel deployment on the threaded backend of the runtime
// seam (one event-loop thread per node; optionally localhost TCP with the
// wire codec) and drives it closed-loop with a workload mix, printing
// committed/aborted counts and wall-clock latency percentiles. Unlike
// carousel_sim this measures the implementation on real threads and
// sockets, so numbers vary run to run with the machine. Examples:
//
//   carousel_rt --transport=inproc --txns=5000
//   carousel_rt --transport=tcp --workload=ycsbt --dcs=3 --partitions=5
//               --clients-per-dc=4 --json=BENCH_rt_smoke.json
//
// Flags:
//   --transport=inproc|tcp   (default inproc)
//   --system=carousel-basic|carousel-fast  (default carousel-fast)
//   --dcs=N            (default 3)    --partitions=N  (default 3)
//   --replication=N    (default 3)    --clients-per-dc=N (default 2)
//   --workload=retwis|ycsbt (default retwis)  --keys=N (default 100000)
//   --zipf=F           (default 0.75)
//   --txns=N           committed-transaction target (default 2000)
//   --pipeline=K       concurrent transaction chains per client
//                      (default 1 = closed loop; >1 keeps K txns in
//                      flight per client, the load shape that exercises
//                      transport egress coalescing)
//   --timeout=S        give up after S wall seconds (default 120)
//   --seed=N           (default 1)
//   --batching         coalesce server->server messages into
//                      BatchEnvelopeMsg frames (the sim's egress batcher,
//                      here riding real sockets)
//   --json=PATH        also write a machine-readable summary
//                      (bench-gate "configs" format; config name is
//                      "<transport>-batched" / "<transport>-unbatched")

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "carousel/client.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/topology.h"
#include "harness/rt_cluster.h"
#include "workload/workload.h"

namespace {

using namespace carousel;

struct Args {
  std::string transport = "inproc";
  std::string system = "carousel-fast";
  int dcs = 3;
  int partitions = 3;
  int replication = 3;
  int clients_per_dc = 2;
  std::string workload = "retwis";
  uint64_t keys = 100'000;
  double zipf = 0.75;
  int txns = 2000;
  int pipeline = 1;
  double timeout_s = 120;
  uint64_t seed = 1;
  bool batching = false;
  std::string json_path;
};

bool ParseArg(const std::string& arg, Args* out) {
  auto value_of = [&](const char* name) -> const char* {
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
    return nullptr;
  };
  if (const char* v = value_of("--transport")) {
    out->transport = v;
  } else if (const char* v = value_of("--system")) {
    out->system = v;
  } else if (const char* v = value_of("--dcs")) {
    out->dcs = std::atoi(v);
  } else if (const char* v = value_of("--partitions")) {
    out->partitions = std::atoi(v);
  } else if (const char* v = value_of("--replication")) {
    out->replication = std::atoi(v);
  } else if (const char* v = value_of("--clients-per-dc")) {
    out->clients_per_dc = std::atoi(v);
  } else if (const char* v = value_of("--workload")) {
    out->workload = v;
  } else if (const char* v = value_of("--keys")) {
    out->keys = std::strtoull(v, nullptr, 10);
  } else if (const char* v = value_of("--zipf")) {
    out->zipf = std::atof(v);
  } else if (const char* v = value_of("--txns")) {
    out->txns = std::atoi(v);
  } else if (const char* v = value_of("--pipeline")) {
    out->pipeline = std::atoi(v);
  } else if (const char* v = value_of("--timeout")) {
    out->timeout_s = std::atof(v);
  } else if (const char* v = value_of("--seed")) {
    out->seed = std::strtoull(v, nullptr, 10);
  } else if (const char* v = value_of("--json")) {
    out->json_path = v;
  } else if (arg == "--batching") {
    out->batching = true;
  } else {
    return false;
  }
  return true;
}

// Counters shared across all client loop threads.
struct Scoreboard {
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> timed_out{0};
  std::atomic<int> done_clients{0};
};

// A closed-loop driver pinned to one client's event loop: each completion
// callback starts the next transaction, so everything after the kickoff
// Post runs on the client's own thread (the latency histogram needs no
// lock until the final merge, which happens after Stop()).
struct Driver : std::enable_shared_from_this<Driver> {
  Driver(harness::RtCluster* cluster, int index,
         std::shared_ptr<Scoreboard> board, workload::Generator* generator,
         int target, uint64_t seed)
      : cluster(cluster),
        index(index),
        board(std::move(board)),
        generator(generator),
        target(target),
        rng(seed) {}

  harness::RtCluster* cluster;
  int index;
  std::shared_ptr<Scoreboard> board;
  workload::Generator* generator;
  int target;
  Rng rng;
  Histogram latency;
  uint64_t seq = 0;

  void Next() {
    if (board->committed.load() >= target) {
      board->done_clients.fetch_add(1);
      return;
    }
    const workload::TxnSpec spec = generator->Next(&rng);
    core::CarouselClient* client = cluster->client(index);
    const TxnId tid = client->Begin();
    const auto started = std::chrono::steady_clock::now();
    auto self = shared_from_this();
    auto finish = [self, started](Status status) {
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (status.ok()) {
        self->latency.Record(micros);
        self->board->committed.fetch_add(1);
      } else if (status.code() == StatusCode::kTimedOut) {
        self->board->timed_out.fetch_add(1);
      } else {
        self->board->aborted.fetch_add(1);
      }
      self->Next();
    };
    client->ReadAndPrepare(
        tid, spec.reads, spec.writes,
        [self, client, tid, writes = spec.writes, finish](
            Status status, const core::CarouselClient::ReadResults&) {
          if (writes.empty() || !status.ok()) {
            finish(status);
            return;
          }
          for (const Key& key : writes) {
            client->Write(tid, key,
                          "v" + std::to_string(self->index) + "-" +
                              std::to_string(self->seq++));
          }
          client->Commit(tid, finish);
        });
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], &args)) {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", argv[i]);
      return 2;
    }
  }
  const bool use_tcp = args.transport == "tcp";
  if (!use_tcp && args.transport != "inproc") {
    std::fprintf(stderr, "unknown --transport '%s'\n", args.transport.c_str());
    return 2;
  }

  // Protocol timers are real micros on the threaded backend's monotonic
  // clock; shrink the simulator-tuned defaults so failover and retries
  // operate on interactive timescales.
  core::CarouselOptions options;
  options.fast_path = args.system == "carousel-fast";
  options.local_reads = options.fast_path;
  if (args.system != "carousel-fast" && args.system != "carousel-basic") {
    std::fprintf(stderr, "unknown --system '%s'\n", args.system.c_str());
    return 2;
  }
  options.batching.enabled = args.batching;
  // On the threaded backend Schedule(0) means "after the current drain
  // pass, before sleeping": everything the pass's handlers sent to one
  // destination leaves as one envelope, with no armed-timer latency. The
  // 50 us simulator default would put a real timer sleep on every hop.
  options.batching.flush_interval = 0;
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.heartbeat_interval = 200'000;
  options.client_retry_timeout = 1'500'000;
  options.coordinator_retry_interval = 1'500'000;
  options.pending_gc_interval = 5'000'000;

  Topology topo = Topology::Uniform(args.dcs, /*inter_dc_rtt_ms=*/1);
  topo.PlacePartitions(args.partitions, args.replication);
  for (DcId dc = 0; dc < args.dcs; ++dc) {
    for (int i = 0; i < args.clients_per_dc; ++i) topo.AddClient(dc);
  }

  harness::RtClusterOptions rt_options;
  rt_options.use_tcp = use_tcp;
  rt_options.seed = args.seed;
  harness::RtCluster cluster(std::move(topo), options, rt_options);

  std::printf("transport=%s system=%s dcs=%d partitions=%dx%d clients=%d "
              "workload=%s txns=%d seed=%llu\n",
              args.transport.c_str(), args.system.c_str(), args.dcs,
              args.partitions, args.replication,
              args.dcs * args.clients_per_dc, args.workload.c_str(),
              args.txns, static_cast<unsigned long long>(args.seed));

  if (!cluster.Start()) {
    std::fprintf(stderr, "cluster failed to start (transport=%s)\n",
                 args.transport.c_str());
    return 1;
  }

  workload::WorkloadOptions wopts;
  wopts.num_keys = args.keys;
  wopts.zipf_theta = args.zipf;
  const int num_clients = static_cast<int>(cluster.num_clients());
  auto board = std::make_shared<Scoreboard>();
  // One generator per driver: each runs on its own loop thread.
  std::vector<std::unique_ptr<workload::Generator>> generators;
  std::vector<std::shared_ptr<Driver>> drivers;
  Rng seeder(args.seed);
  for (int i = 0; i < num_clients; ++i) {
    generators.push_back(args.workload == "ycsbt"
                             ? workload::MakeYcsbTGenerator(wopts)
                             : workload::MakeRetwisGenerator(wopts));
    drivers.push_back(std::make_shared<Driver>(&cluster, i, board,
                                               generators.back().get(),
                                               args.txns, seeder.NextU64()));
  }

  // Each chain is an independent closed loop on its client's thread;
  // pipeline > 1 keeps that many transactions in flight per client.
  const int pipeline = args.pipeline < 1 ? 1 : args.pipeline;
  const int total_chains = num_clients * pipeline;
  const auto bench_start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_clients; ++i) {
    auto driver = drivers[i];
    cluster.RunOnClient(i, [driver, pipeline]() {
      for (int k = 0; k < pipeline; ++k) driver->Next();
    });
  }

  const auto deadline =
      bench_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(args.timeout_s));
  while (board->done_clients.load() < total_chains &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  const bool finished = board->done_clients.load() == total_chains;
  const runtime::TransportStats net = cluster.transport_stats();
  cluster.Stop();

  if (std::getenv("CAROUSEL_NET_DEBUG") != nullptr) {
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    std::fprintf(stderr, "rusage: nvcsw=%ld nivcsw=%ld\n", ru.ru_nvcsw,
                 ru.ru_nivcsw);
  }

  Histogram latency;
  for (auto& driver : drivers) latency.Merge(driver->latency);

  const int committed = board->committed.load();
  const int aborted = board->aborted.load();
  const int timed_out = board->timed_out.load();
  const double tps = wall_s > 0 ? committed / wall_s : 0;
  if (!finished) {
    std::fprintf(stderr,
                 "timed out after %.0fs with %d/%d committed transactions\n",
                 wall_s, committed, args.txns);
  }
  std::printf("\ncommitted %d (%.0f tps), aborted %d, timed out %d, "
              "dropped messages %llu, wall %.2fs\n",
              committed, tps, aborted, timed_out,
              static_cast<unsigned long long>(cluster.dropped_messages()),
              wall_s);
  std::printf("latency: %s\n", latency.Summary().c_str());
  std::printf("  p50=%lldus p90=%lldus p95=%lldus p99=%lldus\n",
              static_cast<long long>(latency.Quantile(0.50)),
              static_cast<long long>(latency.Quantile(0.90)),
              static_cast<long long>(latency.Quantile(0.95)),
              static_cast<long long>(latency.Quantile(0.99)));
  if (use_tcp) {
    std::printf("transport: frames sent %llu (%.2f per sendmsg, %llu "
                "syscalls, %llu eagain), received %llu, %.1f MB, "
                "reconnects %llu\n",
                static_cast<unsigned long long>(net.frames_sent),
                net.frames_per_syscall(),
                static_cast<unsigned long long>(net.send_syscalls),
                static_cast<unsigned long long>(net.send_eagain),
                static_cast<unsigned long long>(net.frames_received),
                static_cast<double>(net.bytes_sent) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(net.reconnects));
    std::printf("transport drops: queue-full %llu, connect-fail %llu, "
                "decode-fail %llu\n",
                static_cast<unsigned long long>(net.drops_queue_full),
                static_cast<unsigned long long>(net.drops_connect_fail),
                static_cast<unsigned long long>(net.drops_decode_fail));
  }

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    // bench_gate.py "configs" format so machine-robust counters (commit
    // counts, transport drops, coalescing factor) can be gated against
    // bench/baselines/ while wall-clock metrics stay informational.
    const std::string config_name =
        args.transport + (args.batching ? "-batched" : "-unbatched");
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"rt_smoke\",\n"
        "  \"transport\": \"%s\",\n"
        "  \"system\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"configs\": [\n"
        "    {\n"
        "      \"name\": \"%s\",\n"
        "      \"metrics\": {\n"
        "        \"committed\": %d,\n"
        "        \"aborted\": %d,\n"
        "        \"timed_out\": %d,\n"
        "        \"dropped_messages\": %llu,\n"
        "        \"dropped_transport\": %llu,\n"
        "        \"drops_queue_full\": %llu,\n"
        "        \"drops_connect_fail\": %llu,\n"
        "        \"drops_decode_fail\": %llu,\n"
        "        \"frames_sent\": %llu,\n"
        "        \"frames_per_syscall\": %.3f,\n"
        "        \"wall_seconds\": %.3f,\n"
        "        \"tps\": %.1f,\n"
        "        \"p50_us\": %lld,\n"
        "        \"p90_us\": %lld,\n"
        "        \"p95_us\": %lld,\n"
        "        \"p99_us\": %lld\n"
        "      }\n"
        "    }\n"
        "  ]\n"
        "}\n",
        args.transport.c_str(), args.system.c_str(), args.workload.c_str(),
        config_name.c_str(), committed, aborted, timed_out,
        static_cast<unsigned long long>(cluster.dropped_messages()),
        static_cast<unsigned long long>(net.dropped_total()),
        static_cast<unsigned long long>(net.drops_queue_full),
        static_cast<unsigned long long>(net.drops_connect_fail),
        static_cast<unsigned long long>(net.drops_decode_fail),
        static_cast<unsigned long long>(net.frames_sent),
        net.frames_per_syscall(), wall_s, tps,
        static_cast<long long>(latency.Quantile(0.50)),
        static_cast<long long>(latency.Quantile(0.90)),
        static_cast<long long>(latency.Quantile(0.95)),
        static_cast<long long>(latency.Quantile(0.99)));
    std::fclose(f);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return finished ? 0 : 1;
}
