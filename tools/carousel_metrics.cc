// carousel_metrics — inspect and compare observability snapshots.
//
// The cluster, the chaos harness and the bench harness all export the same
// JSON shape ({"metrics": {...}, "wanrt": {...}}, see Cluster::MetricsJson);
// failing chaos seeds drop one next to their report as seed-<N>-metrics.json.
// This tool flattens such a snapshot into dotted leaf paths so runs can be
// diffed without a JSON library on the box.
//
// Usage:
//   carousel_metrics dump FILE            print "path = value" per leaf
//   carousel_metrics diff A B             compare two snapshots leaf by leaf
//
// diff exit status: 0 when the snapshots agree on every leaf, 1 when any
// leaf differs or exists on only one side, 2 on usage/parse errors. The
// simulation is deterministic, so two runs of the same seed must diff
// clean; a non-empty diff localizes exactly which counter moved.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

// Minimal recursive-descent JSON reader: flattens the document into
// leaf-path -> printable-value, which is all dump/diff need. Numbers keep
// their source text so diff is exact (no reformatting through double).
class Flattener {
 public:
  explicit Flattener(const std::string& text) : text_(text) {}

  bool Run(std::map<std::string, std::string>* out) {
    out_ = out;
    SkipWs();
    if (!Value("")) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  std::string Error() const {
    return "parse error near offset " + std::to_string(pos_);
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(Byte())) pos_++;
  }

  unsigned char Byte() const {
    return static_cast<unsigned char>(text_[pos_]);
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    pos_++;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: c = esc; break;  // \" \\ \/ and unknowns verbatim
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    pos_++;  // closing quote
    return true;
  }

  bool Value(const std::string& path) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object(path);
    if (c == '[') return Array(path);
    if (c == '"') {
      std::string s;
      if (!String(&s)) return false;
      Emit(path, "\"" + s + "\"");
      return true;
    }
    if (Literal("true")) return Emit(path, "true");
    if (Literal("false")) return Emit(path, "false");
    if (Literal("null")) return Emit(path, "null");
    // Number: keep the raw spelling.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(Byte()) || std::strchr("+-.eE", text_[pos_]))) {
      pos_++;
    }
    if (pos_ == start) return false;
    return Emit(path, text_.substr(start, pos_ - start));
  }

  bool Object(const std::string& path) {
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      pos_++;
      if (!Value(path.empty() ? key : path + "." + key)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Array(const std::string& path) {
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    for (size_t i = 0;; ++i) {
      if (!Value(path + "[" + std::to_string(i) + "]")) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Emit(const std::string& path, std::string value) {
    (*out_)[path.empty() ? "." : path] = std::move(value);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, std::string>* out_ = nullptr;
};

bool LoadLeaves(const char* path, std::map<std::string, std::string>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "carousel_metrics: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Flattener flattener(text);
  if (!flattener.Run(out)) {
    std::fprintf(stderr, "carousel_metrics: %s: %s\n", path,
                 flattener.Error().c_str());
    return false;
  }
  return true;
}

int Dump(const char* file) {
  std::map<std::string, std::string> leaves;
  if (!LoadLeaves(file, &leaves)) return 2;
  for (const auto& [path, value] : leaves) {
    std::printf("%s = %s\n", path.c_str(), value.c_str());
  }
  return 0;
}

int Diff(const char* file_a, const char* file_b) {
  std::map<std::string, std::string> a, b;
  if (!LoadLeaves(file_a, &a) || !LoadLeaves(file_b, &b)) return 2;
  size_t differences = 0;
  for (const auto& [path, value] : a) {
    auto it = b.find(path);
    if (it == b.end()) {
      std::printf("- %s = %s\n", path.c_str(), value.c_str());
      differences++;
    } else if (it->second != value) {
      std::printf("~ %s = %s -> %s\n", path.c_str(), value.c_str(),
                  it->second.c_str());
      differences++;
    }
  }
  for (const auto& [path, value] : b) {
    if (a.find(path) == a.end()) {
      std::printf("+ %s = %s\n", path.c_str(), value.c_str());
      differences++;
    }
  }
  if (differences == 0) {
    std::printf("identical (%zu leaves)\n", a.size());
    return 0;
  }
  std::printf("%zu leaf/leaves differ\n", differences);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "dump") == 0) {
    return Dump(argv[2]);
  }
  if (argc == 4 && std::strcmp(argv[1], "diff") == 0) {
    return Diff(argv[2], argv[3]);
  }
  std::fprintf(stderr,
               "usage: carousel_metrics dump FILE\n"
               "       carousel_metrics diff A B\n"
               "(see header comment for the snapshot sources)\n");
  return 2;
}
