#!/usr/bin/env python3
"""Summarize gcov line coverage for a CAROUSEL_COVERAGE build tree.

Usage:
    scripts/coverage_summary.py BUILD_DIR [--source-prefix src/]

Walks BUILD_DIR for .gcda counter files (written when instrumented
binaries run), invokes `gcov --json-format` on each, and merges the
per-line execution counts across translation units — a header exercised
from ten TUs counts as covered if any of them ran its lines. Prints a
per-file table and a repo total for files under --source-prefix
(default src/), and exits non-zero only on usage errors: coverage is
reported, not gated, so a refactor that moves lines around cannot fail
CI by itself.

Plain gcov is the only requirement; no gcovr/lcov needed.
"""

import argparse
import json
import os
import signal
import subprocess
import sys

# Die quietly when piped into `head`.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def gcov_json(gcda, repo_root):
    """Runs gcov on one .gcda; yields (source_path, {line: count})."""
    try:
        proc = subprocess.run(
            ["gcov", "--stdout", "--json-format", os.path.basename(gcda)],
            cwd=os.path.dirname(gcda), capture_output=True, text=True,
            check=False)
    except FileNotFoundError:
        print("coverage_summary: gcov not found on PATH", file=sys.stderr)
        sys.exit(2)
    # One JSON document per line of stdout (gcov emits one per .gcda).
    for doc_text in proc.stdout.splitlines():
        if not doc_text.startswith("{"):
            continue
        try:
            doc = json.loads(doc_text)
        except json.JSONDecodeError:
            continue
        for unit in doc.get("files", []):
            path = os.path.normpath(
                os.path.join(doc.get("current_working_directory", ""),
                             unit["file"]))
            rel = os.path.relpath(path, repo_root)
            lines = {}
            for line in unit.get("lines", []):
                lines[line["line_number"]] = line["count"]
            yield rel, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir")
    parser.add_argument("--source-prefix", default="src/")
    args = parser.parse_args()

    if not os.path.isdir(args.build_dir):
        print(f"coverage_summary: not a directory: {args.build_dir}")
        return 2
    repo_root = os.path.dirname(os.path.abspath(
        os.path.dirname(sys.argv[0]))) or "."

    gcdas = []
    for root, _, files in os.walk(args.build_dir):
        gcdas.extend(os.path.join(root, f) for f in files
                     if f.endswith(".gcda"))
    if not gcdas:
        print(f"coverage_summary: no .gcda files under {args.build_dir} "
              "(build with -DCAROUSEL_COVERAGE=ON and run the tests first)")
        return 2

    # file -> line -> max count across TUs.
    merged = {}
    for gcda in gcdas:
        for rel, lines in gcov_json(gcda, repo_root):
            if not rel.startswith(args.source_prefix):
                continue
            target = merged.setdefault(rel, {})
            for number, count in lines.items():
                target[number] = max(target.get(number, 0), count)

    total_lines = 0
    total_covered = 0
    print(f"{'file':56} {'lines':>7} {'covered':>8} {'pct':>7}")
    for rel in sorted(merged):
        lines = merged[rel]
        covered = sum(1 for c in lines.values() if c > 0)
        total_lines += len(lines)
        total_covered += covered
        pct = 100.0 * covered / len(lines) if lines else 0.0
        print(f"{rel:56} {len(lines):7} {covered:8} {pct:6.1f}%")
    pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    print(f"{'TOTAL':56} {total_lines:7} {total_covered:8} {pct:6.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
