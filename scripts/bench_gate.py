#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json results against committed
baselines.

Usage:
    scripts/bench_gate.py --baseline-dir bench/baselines --result-dir DIR \
        [--tolerance 0.10] [--only NAME]... [--exclude NAME]...

For every BENCH_<name>.json in the baseline directory, the same file must
exist in the result directory, and every (config, metric) in the baseline
must be present there and within +/-tolerance (relative). The comparison
is strict in one direction only for presence: extra configs/metrics in the
result are allowed (a new bench config is not a regression), but anything
recorded in the baseline must still exist.

Baselines hold only deterministic simulated metrics (throughput, ratios) —
never wall-clock, which is machine-dependent. Regenerate with the recipe
in EXPERIMENTS.md after an intentional performance change.

Metrics whose name starts with "wanrt_" are protocol-path counts from the
WANRT ledger (causal cross-DC hop accounting). The simulation is
deterministic, so these are held to exact equality regardless of
--tolerance: any drift means the protocol's message flow changed, which
must be an intentional, explained change.

Baseline metrics named "floor_<metric>" and "ceil_<metric>" are one-sided
gates on the result's plain "<metric>": the result must be >= the floor
value / <= the ceiling value. They express requirements ("committed at
least N", "zero transport drops") rather than a two-sided band, which is
what the real-time transport leg needs — its wall-clock-dependent
absolute numbers can only be gated from one side. A baseline file that
uses only floor_/ceil_ metrics never gates wall-clock symmetric drift.

--only NAME / --exclude NAME filter by baseline file name (the <name>
part of BENCH_<name>.json; repeatable). CI legs use them to gate just the
files their build produced.

Exit status: 0 when all metrics are within tolerance, 1 on regression or
missing data, 2 on usage errors.
"""

import argparse
import json
import os
import sys


def load_bench(path):
    """Returns {config_name: {metric: value}} from one BENCH_*.json."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for config in doc.get("configs", []):
        out[config["name"]] = dict(config.get("metrics", {}))
    return out


def compare(name, baseline, result, tolerance, rows):
    """Appends delta rows; returns the number of failures."""
    failures = 0
    for config, metrics in sorted(baseline.items()):
        if config not in result:
            rows.append((name, config, "<config missing>", "", "", "FAIL"))
            failures += 1
            continue
        for metric, base_value in metrics.items():
            # One-sided gates: floor_/ceil_ baseline entries constrain the
            # plain metric from below/above only.
            bound = None
            lookup = metric
            for prefix in ("floor_", "ceil_"):
                if metric.startswith(prefix):
                    bound = prefix[:-1]
                    lookup = metric[len(prefix):]
                    break
            if lookup not in result[config]:
                rows.append((name, config, metric, f"{base_value:g}", "missing",
                             "FAIL"))
                failures += 1
                continue
            new_value = result[config][lookup]
            if bound == "floor":
                ok = new_value >= base_value
                delta = ">=" if ok else "below"
            elif bound == "ceil":
                ok = new_value <= base_value
                delta = "<=" if ok else "above"
            elif metric.startswith("wanrt_"):
                # Deterministic protocol-path counts: exact match only.
                ok = abs(new_value - base_value) < 1e-9
                delta = "exact" if ok else "drift"
            elif base_value == 0:
                ok = abs(new_value) < 1e-9
                delta = "n/a" if ok else "inf"
            else:
                rel = (new_value - base_value) / base_value
                delta = f"{rel:+.1%}"
                ok = abs(rel) <= tolerance
            rows.append((name, config, metric, f"{base_value:g}",
                         f"{new_value:g}", delta if ok else f"{delta} FAIL"))
            if not ok:
                failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--result-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--only", action="append", default=[],
                        metavar="NAME",
                        help="gate only BENCH_<NAME>.json (repeatable)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="NAME",
                        help="skip BENCH_<NAME>.json (repeatable)")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"bench_gate: baseline dir not found: {args.baseline_dir}")
        return 2
    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))

    def short_name(fname):
        return fname[len("BENCH_"):-len(".json")]

    if args.only:
        unknown = set(args.only) - {short_name(f) for f in baselines}
        if unknown:
            print(f"bench_gate: --only names without baselines: "
                  f"{sorted(unknown)}")
            return 2
        baselines = [f for f in baselines if short_name(f) in args.only]
    baselines = [f for f in baselines if short_name(f) not in args.exclude]
    if not baselines:
        print(f"bench_gate: no BENCH_*.json baselines in {args.baseline_dir}"
              f" after filters")
        return 2

    rows = []
    failures = 0
    for fname in baselines:
        base_path = os.path.join(args.baseline_dir, fname)
        result_path = os.path.join(args.result_dir, fname)
        if not os.path.isfile(result_path):
            print(f"bench_gate: result file missing: {result_path}")
            failures += 1
            continue
        failures += compare(fname, load_bench(base_path),
                            load_bench(result_path), args.tolerance, rows)

    widths = [max(len(str(row[i])) for row in
                  rows + [("file", "config", "metric", "baseline", "result",
                           "delta")])
              for i in range(6)]
    header = ("file", "config", "metric", "baseline", "result", "delta")
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

    if failures:
        print(f"\nbench_gate: FAIL — {failures} metric(s) outside "
              f"+/-{args.tolerance:.0%} of baseline")
        print("If the change is intentional, regenerate bench/baselines/ "
              "(see EXPERIMENTS.md) and commit the new numbers.")
        return 1
    print(f"\nbench_gate: OK — all metrics within +/-{args.tolerance:.0%} "
          f"of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
