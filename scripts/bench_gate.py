#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json results against committed
baselines.

Usage:
    scripts/bench_gate.py --baseline-dir bench/baselines --result-dir DIR \
        [--tolerance 0.10]

For every BENCH_<name>.json in the baseline directory, the same file must
exist in the result directory, and every (config, metric) in the baseline
must be present there and within +/-tolerance (relative). The comparison
is strict in one direction only for presence: extra configs/metrics in the
result are allowed (a new bench config is not a regression), but anything
recorded in the baseline must still exist.

Baselines hold only deterministic simulated metrics (throughput, ratios) —
never wall-clock, which is machine-dependent. Regenerate with the recipe
in EXPERIMENTS.md after an intentional performance change.

Metrics whose name starts with "wanrt_" are protocol-path counts from the
WANRT ledger (causal cross-DC hop accounting). The simulation is
deterministic, so these are held to exact equality regardless of
--tolerance: any drift means the protocol's message flow changed, which
must be an intentional, explained change.

Exit status: 0 when all metrics are within tolerance, 1 on regression or
missing data, 2 on usage errors.
"""

import argparse
import json
import os
import sys


def load_bench(path):
    """Returns {config_name: {metric: value}} from one BENCH_*.json."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for config in doc.get("configs", []):
        out[config["name"]] = dict(config.get("metrics", {}))
    return out


def compare(name, baseline, result, tolerance, rows):
    """Appends delta rows; returns the number of failures."""
    failures = 0
    for config, metrics in sorted(baseline.items()):
        if config not in result:
            rows.append((name, config, "<config missing>", "", "", "FAIL"))
            failures += 1
            continue
        for metric, base_value in metrics.items():
            if metric not in result[config]:
                rows.append((name, config, metric, f"{base_value:g}", "missing",
                             "FAIL"))
                failures += 1
                continue
            new_value = result[config][metric]
            if metric.startswith("wanrt_"):
                # Deterministic protocol-path counts: exact match only.
                ok = abs(new_value - base_value) < 1e-9
                delta = "exact" if ok else "drift"
            elif base_value == 0:
                ok = abs(new_value) < 1e-9
                delta = "n/a" if ok else "inf"
            else:
                rel = (new_value - base_value) / base_value
                delta = f"{rel:+.1%}"
                ok = abs(rel) <= tolerance
            rows.append((name, config, metric, f"{base_value:g}",
                         f"{new_value:g}", delta if ok else f"{delta} FAIL"))
            if not ok:
                failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--result-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"bench_gate: baseline dir not found: {args.baseline_dir}")
        return 2
    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"bench_gate: no BENCH_*.json baselines in {args.baseline_dir}")
        return 2

    rows = []
    failures = 0
    for fname in baselines:
        base_path = os.path.join(args.baseline_dir, fname)
        result_path = os.path.join(args.result_dir, fname)
        if not os.path.isfile(result_path):
            print(f"bench_gate: result file missing: {result_path}")
            failures += 1
            continue
        failures += compare(fname, load_bench(base_path),
                            load_bench(result_path), args.tolerance, rows)

    widths = [max(len(str(row[i])) for row in
                  rows + [("file", "config", "metric", "baseline", "result",
                           "delta")])
              for i in range(6)]
    header = ("file", "config", "metric", "baseline", "result", "delta")
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

    if failures:
        print(f"\nbench_gate: FAIL — {failures} metric(s) outside "
              f"+/-{args.tolerance:.0%} of baseline")
        print("If the change is intentional, regenerate bench/baselines/ "
              "(see EXPERIMENTS.md) and commit the new numbers.")
        return 1
    print(f"\nbench_gate: OK — all metrics within +/-{args.tolerance:.0%} "
          f"of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
