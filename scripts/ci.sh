#!/usr/bin/env bash
# CI entry point. Ten legs, runnable together (one sequential local run)
# or individually (`scripts/ci.sh leg <n> [<n>...]`) so the GitHub Actions
# matrix can fan them out across parallel jobs sharing one ccache:
#   0. Runtime-seam check: the protocol stack (src/carousel, src/raft,
#      src/tapir) must compile against the runtime interfaces only — no
#      simulator includes besides the sim/message.h DTO header.
#   1. Tier-1 verify: RelWithDebInfo build with -Werror on library targets,
#      the fast (`-L tier1`) ctest suite.
#   2. Chaos leg: the slow-labeled suite (pinned chaos corpus, batched and
#      unbatched) plus a bounded seed sweep of the chaos harness. A failing
#      seed prints a self-contained report; replay it locally with
#        ./build/tools/carousel_chaos --seed=<N>
#   3. Sanitizer leg: ASan + UBSan build in a separate tree, full ctest.
#   4. Bench leg: smoke-scale Figure-5 throughput sweep (batched and
#      unbatched configs) plus the core microbenchmarks; writes BENCH_*.json
#      into $BENCH_JSON_DIR and gates the simulated-throughput metrics
#      against bench/baselines/ (+/-10%; `wanrt_`-prefixed protocol-path
#      counts are held to exact equality). Wall-clock is never gated.
#   5. Coverage leg: gcov-instrumented build (-DCAROUSEL_COVERAGE=ON) runs
#      the tier-1 suite and writes a per-file line-coverage table to
#      build-cov/coverage-summary.txt (CI uploads it as an artifact).
#      Informational only — it never fails the run. Skipped when gcov is
#      not on PATH or SKIP_COVERAGE=1.
#   6. TSan leg: ThreadSanitizer build in its own tree runs the
#      threaded-runtime suite (`-L threaded`: the epoll transport unit
#      tests, the threaded-runtime smoke tests, and the rt_chaos
#      fault-injection tests) — the real-thread backend of the runtime
#      seam under the race detector. Skipped when SKIP_TSAN=1 or the
#      toolchain cannot link -fsanitize=thread.
#   7. Real-time chaos leg: a bounded seed sweep of carousel_rt_chaos
#      (kill + WAL restart, partitions, link faults on real threads),
#      certified by the serializability checker. A failing seed writes its
#      report (and keeps its WAL dir) for the artifact upload; replay with
#        ./build/tools/carousel_rt_chaos --seed=<N>
#   8. RT transport leg: carousel_rt over real TCP sockets at smoke scale
#      (3 DCs x 3 partitions x 3 replicas, 16 clients/DC), unbatched plus
#      a pipelined batched run; writes BENCH_rt_tcp*.json and gates them
#      with bench_gate.py --only: committed >= floor, every transport drop
#      counter == 0, and frames-per-sendmsg >= 2 on the pipelined batched
#      config (the egress coalescing the epoll writer exists for).
#      Wall-clock and absolute tps are uploaded but never gated.
#   9. Exploration leg: the systematic interleaving explorer
#      (carousel_explore) exhaustively sweeps delivery orderings of the
#      canonical 2-txn configuration under a depth bound, plus a
#      crash-point sweep and a delay-bounded sequential (stale-local-read
#      regime) sweep, certifying every terminal state with the DSG
#      checker. A violating schedule lands in build/explore-reports as a
#      replayable JSON trace; replay with
#        ./build/tools/carousel_explore --replay=<trace>
#
# Usage: scripts/ci.sh [jobs]           run all legs sequentially
#        scripts/ci.sh leg <n> [<n>...] run the named legs only
#   JOBS=N                          build parallelism (default nproc;
#                                   the positional [jobs] form also works)
#   CHAOS_SEEDS=N                   sweep size for leg 2 (default 200)
#   RT_CHAOS_SEEDS=N                sweep size for leg 7 (default 12; each
#                                   seed holds a ~3.5 s wall-clock fault
#                                   window, so the leg costs ~4 s a seed)
#   BENCH_JSON_DIR=PATH             output dir for leg 4/8 JSONs
#                                   (default build/bench-json)
#   SKIP_BENCH_GATE=1               run leg 4/8 benches but skip the gates
#                                   (for branches that intentionally move
#                                   the numbers; regenerate baselines
#                                   before merging — see EXPERIMENTS.md)
#   SKIP_COVERAGE=1                 skip leg 5 (the coverage build is the
#                                   slowest leg; local runs rarely need it)
#   SKIP_TSAN=1                     skip leg 6
#   EXPLORE_TXNS=N                  transactions for leg 9 (default 2)
#   EXPLORE_DEPTH=N                 prefix-depth bound for leg 9's main
#                                   sweep (default 7: ~12k schedules)
#   EXPLORE_CRASH_DEPTH=N           depth for the crash-point sweep
#                                   (default 5)
#   EXPLORE_DELAY_BOUND=N           delay bound for the sequential sweep
#                                   (default 2); nightly raises these

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CHAOS_SEEDS="${CHAOS_SEEDS:-200}"
RT_CHAOS_SEEDS="${RT_CHAOS_SEEDS:-12}"
EXPLORE_TXNS="${EXPLORE_TXNS:-2}"
EXPLORE_DEPTH="${EXPLORE_DEPTH:-7}"
EXPLORE_CRASH_DEPTH="${EXPLORE_CRASH_DEPTH:-5}"
EXPLORE_DELAY_BOUND="${EXPLORE_DELAY_BOUND:-2}"
BENCH_JSON_DIR="${BENCH_JSON_DIR:-build/bench-json}"

# The main RelWithDebInfo tree several legs share. Idempotent: a second
# call in the same job is a no-op rebuild (and across matrix jobs, ccache
# makes the recompile cheap).
build_main() {
  cmake -B build -S . -DCAROUSEL_WERROR=ON
  cmake --build build -j "$JOBS"
}

leg0() {
  echo "== leg 0: runtime-seam check =="
  # The protocol stack must stay simulator-agnostic: the only sim/ header
  # it may include is the message DTO header the wire codec serializes.
  if grep -rn '#include "sim/' src/carousel src/raft src/tapir \
      | grep -v 'sim/message\.h'; then
    echo "runtime-seam violation: protocol code includes simulator headers" >&2
    exit 1
  fi
  echo "seam intact: src/{carousel,raft,tapir} include only sim/message.h"
}

leg1() {
  echo "== leg 1: tier-1 verify (RelWithDebInfo, -Werror on src/) =="
  build_main
  ctest --test-dir build --output-on-failure -j "$JOBS" -L tier1
}

leg2() {
  echo "== leg 2: chaos corpus + ${CHAOS_SEEDS}-seed sweep =="
  build_main
  ctest --test-dir build --output-on-failure -j "$JOBS" -L slow
  ./build/tools/carousel_chaos --seeds="$CHAOS_SEEDS"
}

leg3() {
  echo "== leg 3: ASan + UBSan =="
  cmake -B build-asan -S . -DCAROUSEL_WERROR=ON -DCAROUSEL_SANITIZE=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

leg4() {
  echo "== leg 4: bench smoke + gate =="
  build_main
  mkdir -p "$BENCH_JSON_DIR"
  CAROUSEL_BENCH_FAST=1 CAROUSEL_BENCH_JSON_DIR="$BENCH_JSON_DIR" \
      ./build/bench/bench_fig5_throughput
  # The installed google-benchmark wants a plain double for min_time (the
  # "0.05s" suffix form is newer). The JSON goes to artifacts only — micro
  # wall-clock is too machine-dependent to gate.
  ./build/bench/bench_micro_core --benchmark_min_time=0.05 \
      --benchmark_out="$BENCH_JSON_DIR/BENCH_micro_core.json" \
      --benchmark_out_format=json
  if [[ "${SKIP_BENCH_GATE:-0}" != "1" ]]; then
    python3 scripts/bench_gate.py --baseline-dir bench/baselines \
        --result-dir "$BENCH_JSON_DIR" \
        --exclude rt_tcp --exclude rt_tcp_coalesce
  else
    echo "bench gate skipped (SKIP_BENCH_GATE=1)"
  fi
}

leg5() {
  echo "== leg 5: line coverage over tier-1 =="
  if [[ "${SKIP_COVERAGE:-0}" == "1" ]]; then
    echo "coverage skipped (SKIP_COVERAGE=1)"
  elif ! command -v gcov >/dev/null; then
    echo "coverage skipped (no gcov on PATH)"
  else
    cmake -B build-cov -S . -DCAROUSEL_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
    cmake --build build-cov -j "$JOBS"
    ctest --test-dir build-cov -j "$JOBS" -L tier1 --output-on-failure
    python3 scripts/coverage_summary.py build-cov \
        | tee build-cov/coverage-summary.txt | tail -1
  fi
}

leg6() {
  echo "== leg 6: TSan over the threaded runtime =="
  if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
    echo "tsan skipped (SKIP_TSAN=1)"
  elif ! echo 'int main(){}' | c++ -fsanitize=thread -x c++ - -o /dev/null 2>/dev/null; then
    echo "tsan skipped (toolchain cannot link -fsanitize=thread)"
  else
    cmake -B build-tsan -S . -DCAROUSEL_WERROR=ON -DCAROUSEL_TSAN=ON \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-tsan -j "$JOBS" \
          --target runtime_threaded_test net_transport_test wire_test \
                   rt_chaos_test storage_test
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L threaded
  fi
}

leg7() {
  echo "== leg 7: real-time chaos (${RT_CHAOS_SEEDS}-seed sweep) =="
  build_main
  mkdir -p build/rt-chaos-reports
  ./build/tools/carousel_rt_chaos --seeds="$RT_CHAOS_SEEDS" \
      --storage-root=build/rt-chaos-storage --report-dir=build/rt-chaos-reports
}

leg8() {
  echo "== leg 8: RT transport over TCP (throughput floor + coalescing gate) =="
  build_main
  mkdir -p "$BENCH_JSON_DIR"
  ./build/tools/carousel_rt --transport=tcp --clients-per-dc=16 \
      --json="$BENCH_JSON_DIR/BENCH_rt_tcp.json"
  ./build/tools/carousel_rt --transport=tcp --clients-per-dc=16 \
      --pipeline=16 --batching \
      --json="$BENCH_JSON_DIR/BENCH_rt_tcp_coalesce.json"
  if [[ "${SKIP_BENCH_GATE:-0}" != "1" ]]; then
    python3 scripts/bench_gate.py --baseline-dir bench/baselines \
        --result-dir "$BENCH_JSON_DIR" \
        --only rt_tcp --only rt_tcp_coalesce
  else
    echo "rt transport gate skipped (SKIP_BENCH_GATE=1)"
  fi
}

leg9() {
  echo "== leg 9: systematic exploration (bounded interleaving sweep) =="
  build_main
  mkdir -p build/explore-reports
  # The canonical tier-1 configuration (2 conflicting txns, 1 partition x
  # 3 DCs): an exhaustive depth-bounded sweep plus a crash-point sweep at
  # the prepare/decision persistence boundaries, every terminal state
  # certified by the DSG checker. A violation dumps a replayable trace
  # into build/explore-reports (CI uploads it); replay locally with
  #   ./build/tools/carousel_explore --replay=build/explore-reports/violation-1.json
  ./build/tools/carousel_explore --txns="$EXPLORE_TXNS" \
      --max-depth="$EXPLORE_DEPTH" --report-dir=build/explore-reports
  ./build/tools/carousel_explore --txns="$EXPLORE_TXNS" \
      --max-depth="$EXPLORE_CRASH_DEPTH" --crash-points=1 \
      --report-dir=build/explore-reports
  # Delay-bounded sequential regime (stale-local-read window): deviations
  # anywhere in the run, so bugs past any feasible prefix depth stay
  # reachable.
  ./build/tools/carousel_explore --sequential --local-reads \
      --txns="$EXPLORE_TXNS" --delay-bound="$EXPLORE_DELAY_BOUND" \
      --report-dir=build/explore-reports
}

ALL_LEGS=(0 1 2 3 4 5 6 7 8 9)

if [[ "${1:-}" == "leg" ]]; then
  shift
  if [[ $# -eq 0 ]]; then
    echo "usage: scripts/ci.sh leg <n> [<n>...]" >&2
    exit 2
  fi
  for n in "$@"; do
    if ! declare -F "leg$n" >/dev/null; then
      echo "unknown leg '$n' (have: ${ALL_LEGS[*]})" >&2
      exit 2
    fi
  done
  for n in "$@"; do
    "leg$n"
    echo
  done
  echo "CI: leg(s) $* passed"
  exit 0
fi

# Sequential full run; a positional jobs count keeps the historical CLI.
if [[ $# -ge 1 ]]; then
  JOBS="$1"
fi
for n in "${ALL_LEGS[@]}"; do
  "leg$n"
  echo
done
echo "CI: all legs passed"
