#!/usr/bin/env bash
# CI entry point. Two legs:
#   1. Tier-1 verify: RelWithDebInfo build with -Werror on library targets,
#      full ctest suite.
#   2. Sanitizer leg: ASan + UBSan build in a separate tree, full ctest.
#
# Usage: scripts/ci.sh [jobs]   (defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== leg 1: tier-1 verify (RelWithDebInfo, -Werror on src/) =="
cmake -B build -S . -DCAROUSEL_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== leg 2: ASan + UBSan =="
cmake -B build-asan -S . -DCAROUSEL_WERROR=ON -DCAROUSEL_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "CI: all legs passed"
