#!/usr/bin/env bash
# CI entry point. Three legs:
#   1. Tier-1 verify: RelWithDebInfo build with -Werror on library targets,
#      the fast (`-L tier1`) ctest suite.
#   2. Chaos leg: the slow-labeled suite (pinned chaos corpus) plus a
#      bounded seed sweep of the chaos harness. A failing seed prints a
#      self-contained report; replay it locally with
#        ./build/tools/carousel_chaos --seed=<N>
#   3. Sanitizer leg: ASan + UBSan build in a separate tree, full ctest.
#
# Usage: scripts/ci.sh [jobs]       (defaults to nproc)
#   CHAOS_SEEDS=N                   sweep size for leg 2 (default 200)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"
CHAOS_SEEDS="${CHAOS_SEEDS:-200}"

echo "== leg 1: tier-1 verify (RelWithDebInfo, -Werror on src/) =="
cmake -B build -S . -DCAROUSEL_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS" -L tier1

echo
echo "== leg 2: chaos corpus + ${CHAOS_SEEDS}-seed sweep =="
ctest --test-dir build --output-on-failure -j "$JOBS" -L slow
./build/tools/carousel_chaos --seeds="$CHAOS_SEEDS"

echo
echo "== leg 3: ASan + UBSan =="
cmake -B build-asan -S . -DCAROUSEL_WERROR=ON -DCAROUSEL_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "CI: all legs passed"
